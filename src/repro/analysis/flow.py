"""Per-function flow facts: CFG + dataflow distilled to plain data.

This is the bridge between the syntax layer and the interprocedural
passes.  :func:`compute_flow` builds one function's CFG
(:mod:`repro.analysis.cfg`), runs the intraprocedural analyses over it
(:mod:`repro.analysis.dataflow`), and returns a :class:`FlowSummary` —
a plain-data record that serialises into the result cache exactly like
the rest of :class:`~repro.analysis.index.FunctionSummary`.  A warm
``repro check`` run therefore replays flow facts from the cache and
rebuilds **zero** CFGs (the ``--stats`` counter CI asserts on).

What gets computed, per function:

* **escaping raises** — ``raise SomeError(...)`` statements whose type
  survives every enclosing handler (a matching non-re-raising handler
  absorbs; a re-raising or non-matching one does not), and the
  *absorbed-type sets* guarding each call site.  The exception-flow
  pass composes these over the call graph (EXC101).
* **silent handler paths** — broad handlers with a CFG path from the
  handler entry to the function's continuation that crosses neither a
  ``raise`` nor a ``DocumentFailure(...)`` construction (EXC102).
* **module-state writes** — ``global`` assignments, attribute /
  subscript stores and mutating method calls on module-level names
  *or on local aliases of them* (a forward alias analysis tracks
  ``state = _STATE`` style bindings) (CONC101).
* **process-boundary risks** — values a forward picklability analysis
  knows to be unpicklable (lambdas, nested functions, open handles,
  locks, generators) flowing into ``submit`` / ``Process`` /
  ``send``-style boundary calls (CONC102).
* **ordering events** — thread starts, pool/process creations, and
  resolvable calls, with the CFG may-happen-before relation between
  them, so the concurrency pass can prove fork-after-thread hazards
  even when the thread start and the fork hide in different callees
  (CONC103).  Functions with more than :data:`MAX_EVENTS` events are
  not order-analysed (recorded as an empty relation — the pass
  under-reports there rather than guessing).
* **resource lifecycle** — a backward *must-release* analysis over
  locally acquired pools/executors/files/checkpoint logs (``with``
  acquisitions and ownership transfers are exempt) for RSRC101, and a
  forward *must-closed* analysis flagging uses after a definite
  release for RSRC102.

Known approximations (all chosen to under-report): implicit
exceptions from calls are not raise edges; a helper that records a
``DocumentFailure`` on the handler's behalf is invisible to the
swallow check; resources released by a callee count as escaped, not
released.
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import CFG, HandlerGuard, build_cfg
from repro.analysis.dataflow import (
    TOP,
    IntersectLattice,
    MapLattice,
    solve_backward,
    solve_forward,
)

#: Order analysis is skipped for functions with more events than this
#: (quadratic pair budget); the concurrency pass then under-reports.
MAX_EVENTS = 40

#: Methods that release / tear down a resource or mark its end of life.
RELEASE_METHODS = {
    "close", "shutdown", "terminate", "join", "kill", "release",
    "cancel", "detach", "unlink",
}

#: Releases that make subsequent *use* a RSRC102 finding (joining a
#: terminated process or re-releasing is legal; writing to a closed
#: file is not).
CLOSING_RELEASES = {"close", "shutdown", "terminate"}

#: Reads that are legal on a released resource.
_POST_RELEASE_OK = RELEASE_METHODS | {"is_alive", "poll", "done", "closed", "exitcode"}

#: Mutating container/object methods (the CONC101 write detectors).
_MUTATORS = {
    "append", "extend", "add", "update", "setdefault", "pop", "popitem",
    "remove", "discard", "clear", "insert", "sort", "reverse",
}

#: Constructors whose results are not picklable / not fork-portable.
_UNPICKLABLE_CTORS = {
    "threading.Lock": "a thread lock",
    "threading.RLock": "a thread lock",
    "threading.Condition": "a condition variable",
    "threading.Event": "a thread event",
    "threading.Semaphore": "a semaphore",
    "threading.local": "thread-local storage",
}

#: Call-attribute names that ship their arguments across a process
#: boundary.  The concurrency pass only applies these inside the two
#: multiprocessing layers, so the liberal attribute match cannot leak
#: findings into unrelated code.
_BOUNDARY_ATTRS = {
    "submit", "map", "send", "put", "put_nowait",
    "apply_async", "map_async", "imap", "imap_unordered",
}


# ----------------------------------------------------------------------
# The plain-data product
# ----------------------------------------------------------------------


@dataclass
class FlowSummary:
    """CFG-derived facts for one function, ready to cache."""

    #: (resolved exception type, line) of raises escaping the function.
    raises: List[Tuple[str, int]] = field(default_factory=list)
    #: (call line, absorbed type leaves; "*" = a broad absorbing handler).
    guarded_calls: List[Tuple[int, List[str]]] = field(default_factory=list)
    #: broad-handler lines with a record-free path to the continuation.
    swallows: List[int] = field(default_factory=list)
    #: (state name, line, how) — writes to module-level state.
    global_writes: List[Tuple[str, int, str]] = field(default_factory=list)
    #: (line, reason) — unpicklable value into a process-boundary call.
    boundary_risks: List[Tuple[int, str]] = field(default_factory=list)
    #: (line, kind, detail): kind is "thread-start" | "pool-create" | "call".
    conc_events: List[Tuple[int, str, str]] = field(default_factory=list)
    #: (i, j) indices into ``conc_events``: event i may precede event j.
    conc_reach: List[Tuple[int, int]] = field(default_factory=list)
    #: (line, kind, var) — acquisition with a release-free path to exit.
    leaks: List[Tuple[int, str, str]] = field(default_factory=list)
    #: (line, var, release kind) — use after a definite release.
    use_after_release: List[Tuple[int, str, str]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "raises": [list(r) for r in self.raises],
            "guarded_calls": [[line, list(types)] for line, types in self.guarded_calls],
            "swallows": list(self.swallows),
            "global_writes": [list(w) for w in self.global_writes],
            "boundary_risks": [list(b) for b in self.boundary_risks],
            "conc_events": [list(e) for e in self.conc_events],
            "conc_reach": [list(p) for p in self.conc_reach],
            "leaks": [list(l) for l in self.leaks],
            "use_after_release": [list(u) for u in self.use_after_release],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FlowSummary":
        return FlowSummary(
            raises=[(str(t), int(ln)) for t, ln in data["raises"]],
            guarded_calls=[
                (int(line), [str(t) for t in types])
                for line, types in data["guarded_calls"]
            ],
            swallows=[int(ln) for ln in data["swallows"]],
            global_writes=[
                (str(n), int(ln), str(k)) for n, ln, k in data["global_writes"]
            ],
            boundary_risks=[(int(ln), str(r)) for ln, r in data["boundary_risks"]],
            conc_events=[
                (int(ln), str(k), str(d)) for ln, k, d in data["conc_events"]
            ],
            conc_reach=[(int(i), int(j)) for i, j in data["conc_reach"]],
            leaks=[(int(ln), str(k), str(v)) for ln, k, v in data["leaks"]],
            use_after_release=[
                (int(ln), str(v), str(k)) for ln, v, k in data["use_after_release"]
            ],
        )

    def empty(self) -> bool:
        return not (
            self.raises or self.guarded_calls or self.swallows
            or self.global_writes or self.boundary_risks or self.conc_events
            or self.leaks or self.use_after_release
        )


# ----------------------------------------------------------------------
# Name resolution (aliases + self-attribute and local-variable typing)
# ----------------------------------------------------------------------


class Resolver:
    """Dotted-name resolution for one function body.

    Extends the PR 4 walker's alias expansion with two flow-derived
    sharpenings: ``self.attr.meth`` resolves through the enclosing
    class's ``self.attr = Ctor(...)`` assignments, and ``x.meth``
    resolves when every assignment to local ``x`` constructs the same
    class.  Both only ever *add* edges that the source demonstrably
    creates — an unknown stays unknown.
    """

    def __init__(
        self,
        aliases: Dict[str, str],
        class_name: Optional[str] = None,
        self_attr_types: Optional[Dict[str, str]] = None,
        local_types: Optional[Dict[str, str]] = None,
    ):
        self.aliases = aliases
        self.class_name = class_name
        self.self_attr_types = self_attr_types or {}
        self.local_types = local_types or {}

    def resolve(self, node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in ("self", "cls") and self.class_name:
            if len(parts) == 1:
                return f"{self.class_name}.{parts[0]}"
            if len(parts) == 2 and parts[1] in self.self_attr_types:
                return f"{self.self_attr_types[parts[1]]}.{parts[0]}"
            return None
        if root in self.local_types:
            return ".".join([self.local_types[root]] + list(reversed(parts)))
        expanded = self.aliases.get(root, root)
        parts.append(expanded)
        return ".".join(reversed(parts))


def _is_constructor_name(resolved: str) -> bool:
    leaf = resolved.rsplit(".", 1)[-1]
    return bool(leaf) and leaf[0].isupper() and not leaf.isupper()


def local_constructor_types(func, resolver: Resolver) -> Dict[str, str]:
    """``local name -> constructed class`` for single-typed locals.

    Only names whose *every* binding is a call to the same
    capitalised (class-like) dotted name are typed; any other binding
    — a parameter, a re-assignment, a loop target — poisons the name.
    """
    candidates: Dict[str, Optional[str]] = {}

    def poison(target: ast.AST) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                candidates[node.id] = None

    args = func.args
    for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        candidates[a.arg] = None
    for a in (args.vararg, args.kwarg):
        if a is not None:
            candidates[a.arg] = None

    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(
            node.targets[0], ast.Name
        ):
            name = node.targets[0].id
            ctor: Optional[str] = None
            if isinstance(node.value, ast.Call):
                resolved = resolver.resolve(node.value.func)
                if resolved and _is_constructor_name(resolved):
                    ctor = resolved
            if name not in candidates:
                candidates[name] = ctor
            elif candidates[name] != ctor:
                candidates[name] = None
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            poison(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            poison(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    poison(item.optional_vars)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            candidates[node.name] = None
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    poison(target)
    return {name: ctor for name, ctor in candidates.items() if ctor}


def _local_names(func) -> Set[str]:
    """Names bound anywhere in the function body (shadowing module state)."""
    out: Set[str] = set()
    args = func.args
    for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        out.add(a.arg)
    for a in (args.vararg, args.kwarg):
        if a is not None:
            out.add(a.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_global.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        out.add(sub.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    out.add(sub.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    out.add(sub.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if isinstance(sub, ast.Name):
                            out.add(sub.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            out.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            out.add(node.name)
    return out - declared_global


def _chain_root(node: ast.AST) -> Optional[str]:
    """Root ``Name`` of an attribute/subscript chain, or ``None``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _own_nodes(stmt: ast.AST):
    """AST nodes evaluated by *this* CFG node.

    The CFG stores the whole compound statement on its header node, but
    the body statements have nodes of their own — scanning a header
    with ``ast.walk`` would double-count every call in the body and,
    worse, attribute body effects to the header's dataflow facts.  So
    headers contribute only their header expressions; ``try`` and
    nested ``def``/``class`` headers evaluate nothing of interest.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return ast.walk(stmt.test)
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return itertools.chain(ast.walk(stmt.target), ast.walk(stmt.iter))
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return itertools.chain.from_iterable(
            ast.walk(item.context_expr) for item in stmt.items
        )
    if isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return iter(())
    return ast.walk(stmt)


# ----------------------------------------------------------------------
# The extraction
# ----------------------------------------------------------------------


def compute_flow(
    func,
    resolver: Resolver,
    plain_resolver: Resolver,
    module_state: Set[str],
    cfg=None,
) -> Tuple[FlowSummary, List[Tuple[str, int]]]:
    """Facts for one function; also returns the *typed calls* — call
    edges only the sharpened resolver can see (``x = Ctor(); x.meth()``
    and ``self.attr.meth()``), which the flow passes add to the PR 4
    call graph.  ``cfg`` lets the caller share one build between this
    and the value analysis (the warm-cache "0 CFG(s) built" invariant
    counts every build)."""
    flow = FlowSummary()
    if cfg is None:
        cfg = build_cfg(func)
    stmt_nodes = cfg.stmt_nodes()
    local_names = _local_names(func)
    declared_global: Set[str] = set()
    nested_defs: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not func
        ):
            nested_defs.add(node.name)

    typed_calls: List[Tuple[str, int]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            sharp = resolver.resolve(node.func)
            if sharp is not None and sharp != plain_resolver.resolve(node.func):
                typed_calls.append((sharp, node.lineno))

    _exception_flow(flow, cfg, resolver)
    _state_writes(flow, cfg, resolver, module_state, local_names, declared_global)
    _boundary_risks(flow, cfg, resolver, nested_defs)
    _ordering_events(flow, cfg, resolver)
    _resource_lifecycle(flow, cfg, resolver)
    return flow, typed_calls


# -- exception flow -----------------------------------------------------


def _guard_matches(guard: HandlerGuard, leaf: str) -> bool:
    if guard.broad:
        return True
    return any(t.rsplit(".", 1)[-1] == leaf for t in guard.types)


def _exception_flow(flow: FlowSummary, cfg: CFG, resolver: Resolver) -> None:
    guarded: Dict[int, List[str]] = {}
    for node in cfg.stmt_nodes():
        stmt = node.stmt
        if isinstance(stmt, ast.Raise) and stmt.exc is not None:
            target = stmt.exc.func if isinstance(stmt.exc, ast.Call) else stmt.exc
            resolved = resolver.resolve(target)
            if resolved is None:
                continue
            leaf = resolved.rsplit(".", 1)[-1]
            absorbed = False
            for guard in cfg.guards[node.id]:
                if guard.reraises:
                    continue
                if _guard_matches(guard, leaf):
                    absorbed = True
                    break
            if not absorbed:
                flow.raises.append((resolved, stmt.lineno))
        has_call = any(isinstance(n, ast.Call) for n in _own_nodes(stmt))
        if has_call and cfg.guards[node.id]:
            absorbed_types: List[str] = []
            for guard in cfg.guards[node.id]:
                if guard.reraises:
                    continue
                if guard.broad:
                    if "*" not in absorbed_types:
                        absorbed_types.append("*")
                    break
                for t in guard.types:
                    leaf = t.rsplit(".", 1)[-1]
                    if leaf not in absorbed_types:
                        absorbed_types.append(leaf)
            if absorbed_types:
                line = stmt.lineno
                existing = guarded.setdefault(line, [])
                for t in absorbed_types:
                    if t not in existing:
                        existing.append(t)
    flow.guarded_calls = sorted(guarded.items())

    # Silent paths through broad handlers: BFS from each handler entry
    # that avoids "record" statements (a raise, a DocumentFailure
    # construction, or a tracer ``.event(...)`` emission); reaching the
    # normal exit means some execution swallows the exception without
    # leaving any trace at all.
    record_nodes: Set[int] = set()
    for node in cfg.stmt_nodes():
        stmt = node.stmt
        if isinstance(stmt, ast.Raise):
            record_nodes.add(node.id)
            continue
        for sub in _own_nodes(stmt):
            if not isinstance(sub, ast.Call):
                continue
            if isinstance(sub.func, ast.Attribute) and sub.func.attr == "event":
                record_nodes.add(node.id)
                break
            resolved = resolver.resolve(sub.func)
            if resolved and resolved.rsplit(".", 1)[-1] == "DocumentFailure":
                record_nodes.add(node.id)
                break
    for guard in cfg.handlers:
        if not guard.broad or guard.entry < 0:
            continue
        seen = {guard.entry}
        stack = [guard.entry]
        silent = False
        while stack and not silent:
            for succ in cfg.nodes[stack.pop()].succs:
                if succ in record_nodes or succ in seen:
                    continue
                if succ == cfg.exit:
                    silent = True
                    break
                seen.add(succ)
                stack.append(succ)
        if silent and guard.line not in flow.swallows:
            flow.swallows.append(guard.line)


# -- module-state writes ------------------------------------------------


def _state_writes(
    flow: FlowSummary,
    cfg: CFG,
    resolver: Resolver,
    module_state: Set[str],
    local_names: Set[str],
    declared_global: Set[str],
) -> None:
    lattice = MapLattice()

    def is_state(name: str) -> bool:
        if name in declared_global:
            return True
        return name in module_state and name not in local_names

    def transfer(node_id: int, fact: Dict[str, str]) -> Dict[str, str]:
        stmt = cfg.nodes[node_id].stmt
        if not isinstance(stmt, ast.Assign):
            return fact
        out = dict(fact)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                if isinstance(stmt.value, ast.Name) and is_state(stmt.value.id):
                    out[target.id] = stmt.value.id
                elif isinstance(stmt.value, ast.Name) and stmt.value.id in fact:
                    out[target.id] = fact[stmt.value.id]
                else:
                    out.pop(target.id, None)
        return out

    facts = solve_forward(cfg, lattice, transfer, {})

    def state_of(root: Optional[str], fact: Dict[str, str]) -> Optional[str]:
        if root is None:
            return None
        if is_state(root):
            return root
        if root in fact:
            return fact[root]
        return None

    def record(name: str, line: int, how: str) -> None:
        entry = (name, line, how)
        if entry not in flow.global_writes:
            flow.global_writes.append(entry)

    for node in cfg.stmt_nodes():
        stmt = node.stmt
        fact = facts[node.id]
        if isinstance(fact, str):  # unreachable node: TOP sentinel
            fact = {}
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared_global:
                    record(target.id, stmt.lineno, "assignment to a global")
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    root = _chain_root(target)
                    state = state_of(root, fact)
                    if state is not None:
                        via = "" if root == state else f" (via alias '{root}')"
                        kind = (
                            "attribute store"
                            if isinstance(target, ast.Attribute)
                            else "subscript store"
                        )
                        record(state, stmt.lineno, kind + via)
                    elif root is not None and root not in local_names:
                        dotted = resolver.aliases.get(root)
                        if dotted and "." not in root and dotted != root:
                            record(
                                f"{dotted}",
                                stmt.lineno,
                                "attribute store on imported module",
                            )
        for sub in _own_nodes(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATORS
            ):
                root = _chain_root(sub.func.value)
                state = state_of(root, fact)
                if state is not None:
                    via = "" if root == state else f" (via alias '{root}')"
                    record(state, sub.lineno, f".{sub.func.attr}() mutation" + via)


# -- process-boundary picklability --------------------------------------


def _unpicklable_ctor(resolved: Optional[str]) -> Optional[str]:
    if resolved is None:
        return None
    if resolved in _UNPICKLABLE_CTORS:
        return _UNPICKLABLE_CTORS[resolved]
    if resolved == "open" or resolved.endswith(".open"):
        return "an open file handle"
    return None


def _boundary_risks(
    flow: FlowSummary, cfg: CFG, resolver: Resolver, nested_defs: Set[str]
) -> None:
    lattice = MapLattice()

    def value_reason(value: ast.AST, fact: Dict[str, str]) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.GeneratorExp):
            return "a generator"
        if isinstance(value, ast.Name):
            if value.id in nested_defs:
                return f"the nested function '{value.id}'"
            return fact.get(value.id)
        if isinstance(value, ast.Call):
            return _unpicklable_ctor(resolver.resolve(value.func))
        return None

    def transfer(node_id: int, fact: Dict[str, str]) -> Dict[str, str]:
        stmt = cfg.nodes[node_id].stmt
        if not isinstance(stmt, ast.Assign):
            return fact
        out = dict(fact)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                reason = value_reason(stmt.value, fact)
                if reason is None:
                    out.pop(target.id, None)
                else:
                    out[target.id] = reason
        return out

    facts = solve_forward(cfg, lattice, transfer, {})

    for node in cfg.stmt_nodes():
        fact = facts[node.id]
        if isinstance(fact, str):
            fact = {}
        for sub in _own_nodes(node.stmt):
            if not isinstance(sub, ast.Call):
                continue
            boundary: Optional[str] = None
            if isinstance(sub.func, ast.Attribute) and sub.func.attr in _BOUNDARY_ATTRS:
                boundary = f".{sub.func.attr}()"
            else:
                resolved = resolver.resolve(sub.func)
                if resolved is not None:
                    leaf = resolved.rsplit(".", 1)[-1]
                    if leaf in ("Process", "ProcessPoolExecutor", "Pool"):
                        boundary = f"{leaf}(...)"
            if boundary is None:
                continue
            arg_values: List[ast.AST] = list(sub.args)
            for kw in sub.keywords:
                arg_values.append(kw.value)
            flat: List[ast.AST] = []
            for value in arg_values:
                if isinstance(value, (ast.Tuple, ast.List)):
                    flat.extend(value.elts)
                else:
                    flat.append(value)
            for value in flat:
                reason = value_reason(value, fact)
                if reason is not None:
                    entry = (
                        sub.lineno,
                        f"{reason} crosses the process boundary in {boundary}",
                    )
                    if entry not in flow.boundary_risks:
                        flow.boundary_risks.append(entry)


# -- ordering events (fork-after-thread) --------------------------------


def _pool_ctor(resolved: Optional[str], call: ast.Call) -> Optional[str]:
    """Detail string when the call creates a forked pool/process."""
    if resolved is not None:
        leaf = resolved.rsplit(".", 1)[-1]
        if leaf == "ProcessPoolExecutor":
            return resolved
        if leaf in ("Pool", "Process") and (
            "multiprocessing" in resolved or resolved in ("Pool", "Process")
        ):
            return resolved
    # ctx-style: get_context(...).Pool(...) / .Process(...)
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in ("Pool", "Process")
        and isinstance(func.value, ast.Call)
    ):
        return f"get_context(...).{func.attr}"
    return None


def _thread_start(resolved_of, call: ast.Call) -> bool:
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "start"):
        return False
    base = func.value
    if isinstance(base, ast.Call):
        inner = resolved_of(base.func)
        return inner is not None and inner.rsplit(".", 1)[-1] == "Thread"
    resolved = resolved_of(base)
    return resolved is not None and resolved.rsplit(".", 1)[-1] == "Thread"


def classify_event(call: ast.Call, resolver: Resolver) -> Optional[Tuple[str, str]]:
    """``(kind, detail)`` when the call is an ordering event:
    ``thread-start``, ``pool-create``, or a resolvable ``call`` the
    concurrency pass can follow into the index."""
    resolved = resolver.resolve(call.func)
    if _thread_start(resolver.resolve, call):
        return ("thread-start", "Thread.start()")
    pool = _pool_ctor(resolved, call)
    if pool is not None:
        return ("pool-create", pool)
    if resolved is None:
        return None
    if resolved.rsplit(".", 1)[-1] == "Thread":
        return None  # bare construction: only .start() matters
    return ("call", resolved)


def _walk_import_time(node: ast.AST):
    """Like ``ast.walk`` but skipping function/lambda bodies — only
    code executed at import time remains."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


def module_conc_events(tree: ast.Module, resolver: Resolver) -> List[Tuple[int, str, str]]:
    """Ordering events in import-time code (module and class bodies;
    function bodies excluded) — the pool-created-at-import detector's
    input."""
    events: List[Tuple[int, str, str]] = []
    for sub in _walk_import_time(tree):
        if isinstance(sub, ast.Call):
            classified = classify_event(sub, resolver)
            if classified is not None:
                events.append((sub.lineno, classified[0], classified[1]))
    events.sort()
    return events


def _ordering_events(flow: FlowSummary, cfg: CFG, resolver: Resolver) -> None:
    events: List[Tuple[int, str, str, int]] = []  # (line, kind, detail, node)
    for node in cfg.stmt_nodes():
        for sub in _own_nodes(node.stmt):
            if not isinstance(sub, ast.Call):
                continue
            classified = classify_event(sub, resolver)
            if classified is not None:
                events.append((sub.lineno, classified[0], classified[1], node.id))
    if len(events) > MAX_EVENTS:
        interesting = [e for e in events if e[1] != "call"]
        if not interesting:
            return
        events = interesting[:MAX_EVENTS]
    flow.conc_events = [(line, kind, detail) for line, kind, detail, _ in events]
    for i, (_, _, _, node_i) in enumerate(events):
        reachable = cfg.reachable_from(node_i)
        for j, (_, _, _, node_j) in enumerate(events):
            if i == j:
                continue
            if node_j in reachable and (node_j != node_i):
                flow.conc_reach.append((i, j))
            elif node_j == node_i and i < j:
                # Same statement (e.g. nested calls): source order.
                flow.conc_reach.append((i, j))


# -- resource lifecycle -------------------------------------------------


def _acquisition_kind(resolved: Optional[str]) -> Optional[str]:
    if resolved is None:
        return None
    leaf = resolved.rsplit(".", 1)[-1]
    if resolved == "open":
        return "file handle"
    if resolved.endswith("CheckpointLog.open"):
        return "checkpoint log"
    if leaf in ("ProcessPoolExecutor", "ThreadPoolExecutor"):
        return "executor"
    if leaf == "Pool" and "multiprocessing" in resolved:
        return "process pool"
    if leaf == "Pipe" and "multiprocessing" in resolved:
        return "pipe connection"
    if leaf == "Popen":
        return "subprocess"
    return None


def _resource_lifecycle(flow: FlowSummary, cfg: CFG, resolver: Resolver) -> None:
    # Per-statement classification.
    acquisitions: Dict[int, List[Tuple[str, str, int]]] = {}  # node -> (var, kind, line)
    releases: Dict[int, List[Tuple[str, str]]] = {}  # node -> (var, method)
    uses: Dict[int, List[Tuple[str, str, int]]] = {}  # node -> (var, attr, line)
    escaped: Set[str] = set()
    with_managed: Set[str] = set()
    candidates: Set[str] = set()

    def scan_escapes(expr: ast.AST, skip: Optional[ast.AST] = None) -> None:
        for sub in ast.walk(expr):
            if sub is skip:
                continue
            if isinstance(sub, ast.Call):
                for value in list(sub.args) + [kw.value for kw in sub.keywords]:
                    for name in ast.walk(value):
                        if isinstance(name, ast.Name):
                            escaped.add(name.id)

    for node in cfg.stmt_nodes():
        stmt = node.stmt
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name in ast.walk(item.optional_vars):
                        if isinstance(name, ast.Name):
                            with_managed.add(name.id)
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            acq: List[Tuple[str, str]] = []
            if isinstance(value, ast.Call):
                kind = _acquisition_kind(resolver.resolve(value.func))
                if kind is not None:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            acq.append((target.id, kind))
                        elif isinstance(target, ast.Tuple):
                            for elt in target.elts:
                                if isinstance(elt, ast.Name):
                                    acq.append((elt.id, kind))
            if acq:
                acquisitions[node.id] = [
                    (var, kind, stmt.lineno) for var, kind in acq
                ]
                candidates.update(var for var, _ in acq)
            else:
                # Aliasing or storing: the value escapes our tracking.
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Name):
                        escaped.add(sub.id)
        elif isinstance(stmt, (ast.Return, ast.Expr)) and isinstance(
            getattr(stmt, "value", None), (ast.Yield, ast.YieldFrom)
        ):
            value = stmt.value.value  # type: ignore[union-attr]
            if value is not None:
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Name):
                        escaped.add(sub.id)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            for sub in ast.walk(stmt.value):
                if isinstance(sub, ast.Name):
                    escaped.add(sub.id)

        for sub in _own_nodes(stmt):
            if isinstance(sub, ast.Call):
                scan_escapes(sub)
                if isinstance(sub.func, ast.Attribute) and isinstance(
                    sub.func.value, ast.Name
                ):
                    var = sub.func.value.id
                    if sub.func.attr in RELEASE_METHODS:
                        releases.setdefault(node.id, []).append((var, sub.func.attr))
                    else:
                        uses.setdefault(node.id, []).append(
                            (var, sub.func.attr, sub.lineno)
                        )

    tracked = candidates - escaped - with_managed
    if not tracked and not releases:
        return

    lattice = IntersectLattice()

    # RSRC101: backward must-release — at an acquisition, is a release
    # of that name inevitable on every path to the normal exit?
    def release_transfer(node_id: int, fact: object):
        if fact is TOP or fact == TOP:
            return fact
        released = set(fact)  # type: ignore[arg-type]
        for var, _method in releases.get(node_id, ()):
            released.add(var)
        return frozenset(released)

    release_facts = solve_backward(cfg, lattice, release_transfer, frozenset())
    for node_id, acq_list in acquisitions.items():
        fact = release_facts[node_id]
        for var, kind, line in acq_list:
            if var not in tracked:
                continue
            if fact is TOP or fact == TOP:
                continue  # normal exit unreachable from here
            if var not in fact:  # type: ignore[operator]
                flow.leaks.append((line, kind, var))

    # RSRC102: forward must-closed — a use after a definite close.
    closing: Dict[int, List[str]] = {}
    close_kind: Dict[str, str] = {}
    for node_id, rel_list in releases.items():
        for var, method in rel_list:
            if method in CLOSING_RELEASES and var in tracked:
                closing.setdefault(node_id, []).append(var)
                close_kind[var] = method

    if not closing:
        return

    def closed_transfer(node_id: int, fact: object):
        if fact is TOP or fact == TOP:
            return fact
        closed = set(fact)  # type: ignore[arg-type]
        for var, _kind, _line in acquisitions.get(node_id, ()):
            closed.discard(var)
        for var in closing.get(node_id, ()):
            closed.add(var)
        return frozenset(closed)

    closed_facts = solve_forward(cfg, lattice, closed_transfer, frozenset())
    for node_id, use_list in uses.items():
        fact = closed_facts[node_id]
        if fact is TOP or fact == TOP:
            continue
        for var, attr, line in use_list:
            if attr in _POST_RELEASE_OK:
                continue
            if var in fact:  # type: ignore[operator]
                entry = (line, var, close_kind.get(var, "close"))
                if entry not in flow.use_after_release:
                    flow.use_after_release.append(entry)
