"""Per-function control-flow graphs for the flow-sensitive passes.

The PR 4 index reduced every function to *sets* — calls made, sinks
hit — which is exactly the information order-insensitive passes need
and exactly not enough for the concurrency / exception-flow / resource
questions the serve layer raises: "is the pool created *after* a
thread started?", "does this handler path reach the next statement
without recording a failure?", "is there a path from ``open()`` to an
exit that never closes?".  Those are path questions, so this module
builds a small statement-level CFG per function:

* one :class:`CFGNode` per simple statement (compound statements
  contribute their header: an ``if`` test, a loop head, a ``with``
  item list), plus synthetic ``entry`` / ``exit`` / ``raise-exit`` and
  join nodes;
* explicit edges for branches, loops, ``break`` / ``continue`` /
  ``return``, ``raise`` (to matching enclosing handlers, else to the
  raise exit) and ``try`` / ``except`` / ``else`` / ``finally``
  (jumps out of a ``try`` are routed *through* the ``finally`` body);
* a **guard map**: for every node, the stack of enclosing ``except``
  clauses (innermost first) with their caught types and whether the
  handler body re-raises — the exception-flow pass consumes this
  instead of materialising implicit exception edges for every call.

Deliberate approximations, chosen so the analyses built on top
under-report rather than invent findings:

* implicit exceptions (any call may raise) do **not** get edges; only
  explicit ``raise`` statements divert control.  Leak/flow checks
  therefore reason about normal exits and explicit raises.
* a jump through nested ``finally`` blocks wires each ``finally`` to
  the next; the reconverging edges can create paths that no concrete
  execution takes (a *may* analysis stays sound for reporting, a
  *must* analysis loses a little precision).

The solver that runs over these graphs lives in
:mod:`repro.analysis.dataflow`; the per-function fact extraction in
:mod:`repro.analysis.flow`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Exception names a handler clause makes "broad": everything below
#: ``Exception`` is caught, including the injected fault types.
BROAD_EXCEPTIONS = {"Exception", "BaseException"}


@dataclass
class HandlerGuard:
    """One ``except`` clause, as seen by statements inside its ``try``.

    ``types`` holds the dotted source names of the caught exceptions
    (``[]`` for a bare ``except``); ``broad`` is True for bare /
    ``Exception`` / ``BaseException`` clauses.  ``reraises`` is True
    when the handler body contains a ``raise`` that can rethrow the
    caught exception (a bare ``raise`` or ``raise err`` of the bound
    name) — such a handler does not *absorb* what it catches.
    """

    line: int
    types: List[str] = field(default_factory=list)
    broad: bool = False
    reraises: bool = False
    #: node id of the handler body's entry join, for path analyses.
    entry: int = -1


class CFGNode:
    """One CFG vertex.  ``stmt`` is the owning AST statement for
    ``stmt`` nodes and ``None`` for synthetic nodes."""

    __slots__ = ("id", "kind", "stmt", "succs")

    def __init__(self, node_id: int, kind: str, stmt: Optional[ast.stmt] = None):
        self.id = node_id
        self.kind = kind  # "entry" | "exit" | "raise-exit" | "stmt" | "join"
        self.stmt = stmt
        self.succs: List[int] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = type(self.stmt).__name__ if self.stmt is not None else self.kind
        return f"<CFGNode {self.id} {label} -> {self.succs}>"


class CFG:
    """A built graph plus the lookup tables the analyses share."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry: int = 0
        self.exit: int = 0
        self.raise_exit: int = 0
        #: node id -> enclosing handler guards, innermost first.
        self.guards: Dict[int, Tuple[HandlerGuard, ...]] = {}
        #: every handler guard created while building, in source order.
        self.handlers: List[HandlerGuard] = []

    # -- construction helpers -------------------------------------------

    def add_node(self, kind: str, stmt: Optional[ast.stmt] = None) -> int:
        node = CFGNode(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        return node.id

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succs:
            self.nodes[src].succs.append(dst)

    # -- queries --------------------------------------------------------

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {n.id: [] for n in self.nodes}
        for node in self.nodes:
            for succ in node.succs:
                preds[succ].append(node.id)
        return preds

    def reachable_from(self, start: int) -> Set[int]:
        seen = {start}
        stack = [start]
        while stack:
            for succ in self.nodes[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def stmt_nodes(self) -> List[CFGNode]:
        return [n for n in self.nodes if n.stmt is not None]


@dataclass
class _FinallyCtx:
    """A ``finally`` block currently in scope, entered via its join."""

    entry: int
    #: extra continuations the (not yet built) body must flow to.
    continuations: Set[int] = field(default_factory=set)


@dataclass
class _LoopCtx:
    head: int
    after: int
    #: finally-stack depth at loop entry: break/continue thread only
    #: through finallys opened *inside* the loop.
    finally_depth: int


_SIMPLE_STMTS = (
    ast.Expr, ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete,
    ast.Assert, ast.Pass, ast.Import, ast.ImportFrom, ast.Global,
    ast.Nonlocal, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
)


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body can rethrow what it caught."""
    bound = handler.name
    for node in ast.walk(handler):
        if not isinstance(node, ast.Raise):
            continue
        if node.exc is None:
            return True
        if bound and isinstance(node.exc, ast.Name) and node.exc.id == bound:
            return True
        # ``raise Wrapped(...) from err`` replaces the exception type;
        # it does not count as a rethrow of the caught one.
    return False


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _handler_types(handler: ast.ExceptHandler) -> Tuple[List[str], bool]:
    """``(dotted type names, broad)`` for one except clause."""
    if handler.type is None:
        return [], True
    exprs = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: List[str] = []
    broad = False
    for expr in exprs:
        name = _dotted(expr)
        if name is None:
            broad = True  # dynamic type expression: assume it catches
            continue
        names.append(name)
        if name.rsplit(".", 1)[-1] in BROAD_EXCEPTIONS:
            broad = True
    return names, broad


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.finally_stack: List[_FinallyCtx] = []
        self.loop_stack: List[_LoopCtx] = []
        self.guard_stack: List[List[HandlerGuard]] = []

    # -- plumbing -------------------------------------------------------

    def _node(self, kind: str, stmt: Optional[ast.stmt] = None) -> int:
        node_id = self.cfg.add_node(kind, stmt)
        guards: List[HandlerGuard] = []
        for level in reversed(self.guard_stack):
            guards.extend(level)
        self.cfg.guards[node_id] = tuple(guards)
        return node_id

    def _jump_through_finallys(self, src: int, target: int, depth: int = 0) -> None:
        """Route an abrupt jump through enclosing ``finally`` blocks.

        ``depth`` limits how far out the jump unwinds (break/continue
        stop at the loop's finally depth; return/raise unwind all).
        """
        stack = self.finally_stack[depth:]
        if not stack:
            self.cfg.add_edge(src, target)
            return
        self.cfg.add_edge(src, stack[-1].entry)
        for inner, outer in zip(reversed(stack), list(reversed(stack))[1:]):
            inner.continuations.add(outer.entry)
        stack[0].continuations.add(target)

    # -- statement dispatch ---------------------------------------------

    def build_body(self, body: Sequence[ast.stmt], current: int) -> int:
        """Wire ``body`` after node ``current``; returns the fall-through
        node (``-1`` when every path left abruptly)."""
        for stmt in body:
            if current == -1:
                break  # unreachable code after return/raise/break
            current = self.build_stmt(stmt, current)
        return current

    def build_stmt(self, stmt: ast.stmt, current: int) -> int:
        cfg = self.cfg
        if isinstance(stmt, ast.Return):
            node = self._node("stmt", stmt)
            cfg.add_edge(current, node)
            self._jump_through_finallys(node, cfg.exit)
            return -1
        if isinstance(stmt, ast.Raise):
            node = self._node("stmt", stmt)
            cfg.add_edge(current, node)
            self._wire_raise(node)
            return -1
        if isinstance(stmt, ast.Break):
            node = self._node("stmt", stmt)
            cfg.add_edge(current, node)
            if self.loop_stack:
                loop = self.loop_stack[-1]
                self._jump_through_finallys(node, loop.after, loop.finally_depth)
            return -1
        if isinstance(stmt, ast.Continue):
            node = self._node("stmt", stmt)
            cfg.add_edge(current, node)
            if self.loop_stack:
                loop = self.loop_stack[-1]
                self._jump_through_finallys(node, loop.head, loop.finally_depth)
            return -1
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, current)
        if isinstance(stmt, ast.Match):
            return self._build_match(stmt, current)
        # Simple statement (nested defs/classes count: the definition
        # itself executes here; their bodies get their own CFGs).
        node = self._node("stmt", stmt)
        cfg.add_edge(current, node)
        return node

    # -- compound statements --------------------------------------------

    def _wire_raise(self, node: int) -> None:
        """Edges for an explicit ``raise``: to every enclosing handler
        that may match, stopping at the first broad level; to the raise
        exit when nothing is guaranteed to catch; and into the nearest
        ``finally`` (which runs during unwinding either way)."""
        cfg = self.cfg
        caught_for_sure = False
        for level in reversed(self.guard_stack):
            for guard in level:
                if guard.entry >= 0:
                    cfg.add_edge(node, guard.entry)
            if any(g.broad for g in level):
                caught_for_sure = True
                break
        if not caught_for_sure:
            self._jump_through_finallys(node, cfg.raise_exit)
        elif self.finally_stack:
            cfg.add_edge(node, self.finally_stack[-1].entry)

    def _build_if(self, stmt: ast.If, current: int) -> int:
        cfg = self.cfg
        test = self._node("stmt", stmt)
        cfg.add_edge(current, test)
        after = self._node("join")
        then_end = self.build_body(stmt.body, test)
        if then_end != -1:
            cfg.add_edge(then_end, after)
        if stmt.orelse:
            else_end = self.build_body(stmt.orelse, test)
            if else_end != -1:
                cfg.add_edge(else_end, after)
        else:
            cfg.add_edge(test, after)
        return after if cfg.predecessors()[after] else -1

    def _build_loop(self, stmt, current: int) -> int:
        cfg = self.cfg
        head = self._node("stmt", stmt)
        cfg.add_edge(current, head)
        after = self._node("join")
        self.loop_stack.append(_LoopCtx(head, after, len(self.finally_stack)))
        body_end = self.build_body(stmt.body, head)
        if body_end != -1:
            cfg.add_edge(body_end, head)
        self.loop_stack.pop()
        if stmt.orelse:
            else_end = self.build_body(stmt.orelse, head)
            if else_end != -1:
                cfg.add_edge(else_end, after)
        else:
            cfg.add_edge(head, after)
        return after

    def _build_with(self, stmt, current: int) -> int:
        cfg = self.cfg
        node = self._node("stmt", stmt)
        cfg.add_edge(current, node)
        return self.build_body(stmt.body, node)

    def _build_match(self, stmt: ast.Match, current: int) -> int:
        cfg = self.cfg
        subject = self._node("stmt", stmt)
        cfg.add_edge(current, subject)
        after = self._node("join")
        cfg.add_edge(subject, after)  # no case may match
        for case in stmt.cases:
            end = self.build_body(case.body, subject)
            if end != -1:
                cfg.add_edge(end, after)
        return after

    def _build_try(self, stmt: ast.Try, current: int) -> int:
        cfg = self.cfg
        after = self._node("join")

        finally_ctx: Optional[_FinallyCtx] = None
        if stmt.finalbody:
            finally_ctx = _FinallyCtx(entry=self._node("join"))
        cont = finally_ctx.entry if finally_ctx else after

        # Handler guards exist before the body is built so raise
        # statements (and the guard map) can reference them.
        guards: List[HandlerGuard] = []
        for handler in stmt.handlers:
            types, broad = _handler_types(handler)
            guard = HandlerGuard(
                line=handler.lineno,
                types=types,
                broad=broad,
                reraises=_handler_reraises(handler),
                entry=self._node("join"),
            )
            guards.append(guard)
            cfg.handlers.append(guard)

        if finally_ctx is not None:
            self.finally_stack.append(finally_ctx)
        self.guard_stack.append(guards)
        body_end = self.build_body(stmt.body, current)
        self.guard_stack.pop()

        if body_end != -1:
            if stmt.orelse:
                body_end = self.build_body(stmt.orelse, body_end)
            if body_end != -1:
                cfg.add_edge(body_end, cont)

        for guard, handler in zip(guards, stmt.handlers):
            handler_end = self.build_body(handler.body, guard.entry)
            if handler_end != -1:
                cfg.add_edge(handler_end, cont)

        if finally_ctx is not None:
            self.finally_stack.pop()
            fin_end = self.build_body(stmt.finalbody, finally_ctx.entry)
            if fin_end != -1:
                cfg.add_edge(fin_end, after)
                for target in finally_ctx.continuations:
                    cfg.add_edge(fin_end, target)
        return after


#: CFGs built in this process since interpreter start.  The runner
#: samples it around the per-file stage so ``--stats`` can report how
#: many CFGs a run actually built — a warm cached run must report 0.
BUILD_COUNT = 0


def build_cfg(func) -> CFG:
    """Build the CFG of one ``FunctionDef`` / ``AsyncFunctionDef``."""
    global BUILD_COUNT
    BUILD_COUNT += 1
    builder = _Builder()
    cfg = builder.cfg
    cfg.entry = cfg.add_node("entry")
    cfg.exit = cfg.add_node("exit")
    cfg.raise_exit = cfg.add_node("raise-exit")
    cfg.guards[cfg.entry] = ()
    cfg.guards[cfg.exit] = ()
    cfg.guards[cfg.raise_exit] = ()
    end = builder.build_body(func.body, cfg.entry)
    if end != -1:
        cfg.add_edge(end, cfg.exit)
    return cfg
