"""Concurrency-safety pass: CONC101–103 over the CFG/dataflow facts.

The corpus runner fans work out over forked worker processes; the
roadmap's serve layer keeps those workers warm.  Three properties keep
that safe, and all three are *order* or *reachability* questions no
module-scope rule can phrase:

* **CONC101** — module-level mutable state must not be written by code
  reachable from a worker's entry functions: a forked child writes its
  copy, the parent never sees it, and the bug only shows under
  ``--workers N``.  The flow layer's alias analysis also catches
  writes through local aliases (``state = _STATE; state.plan = …``).
  The fault installer's ambient registry is the sanctioned exception
  (``# conc: ambient``).
* **CONC102** — values a picklability analysis knows to be unpicklable
  (lambdas, nested functions, open handles, locks, generators) must
  not flow into process-boundary calls (``submit``, ``Process(…)``,
  ``conn.send``) in the two multiprocessing layers.  These crash at
  dispatch time with an opaque ``PicklingError`` — or worse, only
  under the spawn start method in CI.
* **CONC103** — ``fork()`` after a thread has started is undefined
  behaviour waiting to happen (the child inherits locked locks), and a
  pool created at import time forks during module initialisation.
  The pass combines each function's intra-CFG may-happen-before
  relation with transitive "starts a thread" / "creates a pool" facts
  over the call graph, so the thread start and the fork may hide in
  different callees.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.index import ProjectIndex
from repro.analysis.lint.engine import Violation
from repro.analysis.passes import Pass, PassRuleDoc, TreeProvider, register_pass
from repro.analysis.passes.flowbase import (
    chain,
    flow_call_edges,
    flow_graph,
    forward_chain,
    reach_from,
    reaches_any,
)

#: Worker-side entry functions: everything they (transitively) call
#: executes inside a forked child.
WORKER_ENTRIES = {
    "repro.perf.runner": ("_init_worker", "_run_one", "_run_chunk"),
    "repro.resilience.supervisor": ("_supervised_worker_main",),
}

#: Modules whose process-boundary calls CONC102 audits.
BOUNDARY_MODULES = ("repro.perf.runner", "repro.resilience.supervisor")


def _worker_roots(index: ProjectIndex) -> List[str]:
    roots: List[str] = []
    for key, summary, fn in index.functions():
        names = WORKER_ENTRIES.get(summary.module or "")
        if names and fn.qualname.split(".")[-1] in names:
            roots.append(key)
    return roots


@register_pass
class ConcurrencyPass(Pass):
    pass_id = "concurrency"
    rules = {
        "CONC101": PassRuleDoc(
            summary="no module-state write reachable from a worker entry",
            doc=(
                "Walks the sharpened call graph forward from the worker entry "
                "functions (_init_worker/_run_one/_run_chunk and "
                "_supervised_worker_main) and reports any reachable write to "
                "module-level state — global assignment, attribute/subscript "
                "store, or mutating method call, including through local "
                "aliases the forward dataflow analysis tracks.  A forked "
                "worker mutates its own copy: the parent never observes the "
                "write, and results silently diverge between --workers N and "
                "serial runs."
            ),
            example=(
                "_SEEN = {}\n"
                "def _run_one(doc):\n"
                "    cache = _SEEN            # alias of module state\n"
                "    cache[doc.id] = doc      # <- CONC101, write in a worker"
            ),
            fix=(
                "thread the state through arguments and return values, or — "
                "for sanctioned ambient registries like the fault-plan "
                "installer — mark the writer with a trailing '# conc: ambient' "
                "pragma (full-line form sanctions the whole module)"
            ),
        ),
        "CONC102": PassRuleDoc(
            summary="no unpicklable value into a process-boundary call",
            doc=(
                "A forward dataflow analysis tracks values that cannot cross "
                "a fork/pickle boundary — lambdas, nested functions, open "
                "file handles, thread locks, generators — and reports when "
                "one flows into submit()/Process()/send()/put()-style calls "
                "in the multiprocessing layers.  These fail at dispatch time "
                "with an opaque PicklingError, or only under the spawn start "
                "method."
            ),
            example=(
                "def run(executor, doc):\n"
                "    fn = lambda: doc.parse()\n"
                "    executor.submit(fn)      # <- CONC102, lambda won't pickle"
            ),
            fix=(
                "pass a module-level function plus plain-data arguments "
                "across the boundary; open handles inside the worker"
            ),
        ),
        "CONC103": PassRuleDoc(
            summary="no fork after thread start; no pool at import time",
            doc=(
                "Combines each function's CFG may-happen-before relation "
                "with transitive starts-a-thread / creates-a-pool facts over "
                "the call graph: a pool or Process created on a path after a "
                "Thread.start() forks a child that inherits the threading "
                "state (possibly locked locks) of the parent.  Also reports "
                "pools created during module import — directly or via an "
                "import-time call — which fork before the program begins."
            ),
            example=(
                "def serve(docs):\n"
                "    Thread(target=watch).start()\n"
                "    with ProcessPoolExecutor() as pool:   # <- CONC103\n"
                "        pool.map(run, docs)"
            ),
            fix=(
                "create process pools before starting any thread, or use the "
                "spawn start method; never create pools at module scope"
            ),
        ),
    }

    def run(self, index: ProjectIndex, trees: TreeProvider) -> Iterator[Violation]:
        edges = flow_call_edges(index)
        graph = flow_graph(edges)
        yield from self._conc101(index, graph)
        yield from self._conc102(index)
        yield from self._conc103(index, graph)

    # -- CONC101 --------------------------------------------------------

    def _conc101(
        self, index: ProjectIndex, graph: Dict[str, List[str]]
    ) -> Iterator[Violation]:
        parent = reach_from(graph, _worker_roots(index))
        for key in sorted(parent):
            fn = index.function(key)
            if fn is None or fn.conc_ambient or fn.flow is None:
                continue
            module_name = key.split("::", 1)[0]
            summary = index.modules[module_name]
            for state, line, how in fn.flow.global_writes:
                yield Violation(
                    path=summary.display_path,
                    line=line,
                    col=1,
                    rule="CONC101",
                    message=(
                        f"{how} writes module state '{state}' inside worker-"
                        f"reachable code ({chain(parent, key)}); a forked "
                        "worker mutates its own copy only — thread the state "
                        "through arguments, or mark sanctioned ambient state "
                        "with '# conc: ambient'"
                    ),
                )

    # -- CONC102 --------------------------------------------------------

    def _conc102(self, index: ProjectIndex) -> Iterator[Violation]:
        for key, summary, fn in index.functions():
            if summary.module not in BOUNDARY_MODULES or fn.flow is None:
                continue
            for line, reason in fn.flow.boundary_risks:
                yield Violation(
                    path=summary.display_path,
                    line=line,
                    col=1,
                    rule="CONC102",
                    message=(
                        f"{reason} in {fn.qualname}; it cannot be pickled — "
                        "pass a module-level function and plain-data "
                        "arguments instead"
                    ),
                )

    # -- CONC103 --------------------------------------------------------

    def _conc103(
        self, index: ProjectIndex, graph: Dict[str, List[str]]
    ) -> Iterator[Violation]:
        starters: Set[str] = set()
        creators: Set[str] = set()
        for key, _summary, fn in index.functions():
            if fn.flow is None:
                continue
            kinds = {kind for _line, kind, _detail in fn.flow.conc_events}
            if "thread-start" in kinds:
                starters.add(key)
            if "pool-create" in kinds:
                creators.add(key)
        to_starter = reaches_any(graph, starters)
        to_creator = reaches_any(graph, creators)

        def event_reaches(
            key: str, kind: str, detail: str, towards: Dict[str, Optional[str]],
            direct: str,
        ) -> Optional[str]:
            """Why this event implies ``direct`` (or None if it doesn't)."""
            if kind == direct:
                return detail
            if kind == "call":
                module = key.split("::", 1)[0]
                target = index.resolve_call(module, detail)
                if target is not None and target in towards:
                    return f"via {forward_chain(towards, target)}"
            return None

        for key, summary, fn in index.functions():
            if fn.flow is None or not fn.flow.conc_reach:
                continue
            events = fn.flow.conc_events
            reported: Set[int] = set()
            for i, j in fn.flow.conc_reach:
                if j in reported:
                    continue
                line_i, kind_i, detail_i = events[i]
                line_j, kind_j, detail_j = events[j]
                started = event_reaches(key, kind_i, detail_i, to_starter, "thread-start")
                forked = event_reaches(key, kind_j, detail_j, to_creator, "pool-create")
                if started is None or forked is None:
                    continue
                reported.add(j)
                fork_desc = (
                    detail_j if kind_j == "pool-create" else f"{detail_j} ({forked})"
                )
                start_desc = (
                    f"line {line_i}" if kind_i == "thread-start"
                    else f"line {line_i} ({started})"
                )
                yield Violation(
                    path=summary.display_path,
                    line=line_j,
                    col=1,
                    rule="CONC103",
                    message=(
                        f"{fork_desc} forks after a thread is started at "
                        f"{start_desc} in {fn.qualname}; the child inherits "
                        "the parent's threading state — create pools before "
                        "starting threads or use the spawn start method"
                    ),
                )

        # Pools created while the module is being imported.
        for name in sorted(index.modules):
            summary = index.modules[name]
            for line, kind, detail in summary.module_conc_events:
                if kind == "pool-create":
                    yield Violation(
                        path=summary.display_path,
                        line=line,
                        col=1,
                        rule="CONC103",
                        message=(
                            f"{detail} creates a process pool at import time; "
                            "importing this module forks — create the pool "
                            "inside a function the caller invokes explicitly"
                        ),
                    )
                elif kind == "call":
                    target = index.resolve_call(name, detail)
                    if target is not None and target in to_creator:
                        yield Violation(
                            path=summary.display_path,
                            line=line,
                            col=1,
                            rule="CONC103",
                            message=(
                                f"import-time call creates a process pool via "
                                f"{forward_chain(to_creator, target)}; "
                                "importing this module forks — defer the call "
                                "to an explicit entry point"
                            ),
                        )
