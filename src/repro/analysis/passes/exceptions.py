"""Exception-flow pass: EXC101–102 over the CFG/dataflow facts.

PR 5's fault-injection layer raises typed ``TransientFault`` /
``PermanentFault`` deep inside the pipeline stages and contains them at
the two registered ``ISOLATION_SITES`` (``VS2Pipeline.run`` and the
supervised worker main).  PR 2's syntactic ``EXC001`` can flag an
``except Exception: pass`` it can *see*; it cannot answer either of the
two questions that actually guard the contract:

* **EXC101** — can a typed fault *escape* a public entry point that is
  not a registered isolation site?  Escape is proven along CFG paths:
  a ``raise`` escapes its function unless an enclosing handler both
  matches the type and does not re-raise; an escape propagates to a
  caller unless the call site sits under a matching handler.
  Propagation stops at registered isolation sites and at functions
  audited with a trailing ``# exc: boundary`` pragma; blame lands on
  call-graph roots (functions no indexed code calls — the API surface).
* **EXC102** — does a broad handler in failure-handling code have a
  CFG path that swallows the exception *silently* — no re-raise, no
  ``DocumentFailure`` recorded, no trace event emitted — before
  rejoining normal control flow?  The module rule only matches the
  literal ``except Exception: pass``; the pass proves path-existence
  through arbitrary handler bodies.  Scoped to modules that deal in
  ``DocumentFailure`` (they import or define it).

When EXC001 and a flow finding land on the same line the runner keeps
only the pass finding; historical baselines migrate with
``repro check --rekey EXC001=EXC101``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.index import ProjectIndex
from repro.analysis.lint.engine import Violation
from repro.analysis.passes import Pass, PassRuleDoc, TreeProvider, register_pass
from repro.analysis.passes.flowbase import flow_call_edges
from repro.resilience.faults import ISOLATION_SITES

#: Exception type leaves the escape analysis tracks.  Leaf-name match,
#: so fixture trees can define their own stand-ins.
FAULT_LEAVES = ("TransientFault", "PermanentFault")


@register_pass
class ExceptionFlowPass(Pass):
    pass_id = "exceptions"
    rules = {
        "EXC101": PassRuleDoc(
            summary="typed faults stay inside registered isolation sites",
            doc=(
                "Computes, per function, which injected fault types "
                "(TransientFault/PermanentFault) can escape along some CFG "
                "path — a raise escapes unless an enclosing handler matches "
                "the type without re-raising — then propagates escapes to "
                "callers whose call sites are not guarded by a matching "
                "handler.  Propagation stops at the ISOLATION_SITES registry "
                "(repro.resilience.faults) and at '# exc: boundary' pragmas; "
                "any call-graph root still reached is an API surface that "
                "can leak an injected fault to the end user."
            ),
            example=(
                "def cuts(region):                 # called from the CLI\n"
                "    with fault_site('segment.cuts'):  # may raise TransientFault\n"
                "        ...\n"
                "# no handler, no isolation site on the path  <- EXC101 at root"
            ),
            fix=(
                "route the call through VS2Pipeline.run (an isolation site), "
                "catch the fault types at the boundary, or mark an audited "
                "entry point with a trailing '# exc: boundary' pragma"
            ),
        ),
        "EXC102": PassRuleDoc(
            summary="no silent swallow path in failure-handling code",
            doc=(
                "For every broad handler (bare except / except Exception) in "
                "a module that deals in DocumentFailure, checks whether some "
                "CFG path runs from the handler entry back to normal control "
                "flow without re-raising, constructing a DocumentFailure, or "
                "emitting a trace event.  Such a path loses a document "
                "failure with no record — the corpus report under-counts and "
                "resume semantics drift.  Unlike EXC001 this follows "
                "arbitrary handler bodies, not just the literal 'pass'."
            ),
            example=(
                "try:\n"
                "    result = pipeline.run(doc)\n"
                "except Exception as err:\n"
                "    if attempt < 3:\n"
                "        retry(doc)\n"
                "    # else: fall through silently   <- EXC102"
            ),
            fix=(
                "record a DocumentFailure (or emit a trace event) on every "
                "handler path, or re-raise what cannot be handled"
            ),
        ),
    }

    def run(self, index: ProjectIndex, trees: TreeProvider) -> Iterator[Violation]:
        yield from self._exc101(index)
        yield from self._exc102(index)

    # -- EXC101 ---------------------------------------------------------

    def _exc101(self, index: ProjectIndex) -> Iterator[Violation]:
        edges = flow_call_edges(index)

        def is_site(key: str) -> bool:
            return key.replace("::", ".") in ISOLATION_SITES

        def is_boundary(key: str) -> bool:
            fn = index.function(key)
            return fn is None or fn.exc_boundary or is_site(key)

        # Seed: direct raises whose type survives local handlers.
        escaping: Dict[str, Dict[str, str]] = {}
        for key, summary, fn in index.functions():
            if fn.flow is None or is_boundary(key):
                continue
            for resolved, line in fn.flow.raises:
                leaf = resolved.rsplit(".", 1)[-1]
                if leaf in FAULT_LEAVES:
                    escaping.setdefault(key, {})[leaf] = (
                        f"raised at {summary.display_path}:{line}"
                    )

        # Fixpoint: escapes propagate caller-wards through unguarded
        # call sites, stopping at isolation sites and boundaries.
        via: Dict[Tuple[str, str], Tuple[str, int]] = {}
        changed = True
        while changed:
            changed = False
            for caller, callees in edges.items():
                if is_boundary(caller):
                    continue
                fn = index.function(caller)
                guarded = dict(fn.flow.guarded_calls) if fn and fn.flow else {}
                for callee, line in callees:
                    if is_boundary(callee):
                        continue
                    absorbed = set(guarded.get(line, ()))
                    if "*" in absorbed:
                        continue
                    for leaf, origin in escaping.get(callee, {}).items():
                        if leaf in absorbed:
                            continue
                        if leaf not in escaping.setdefault(caller, {}):
                            escaping[caller][leaf] = origin
                            via[(caller, leaf)] = (callee, line)
                            changed = True

        # Blame call-graph roots: escaping functions nothing indexed
        # calls.  The resilience layer itself is machinery, not surface.
        called: Set[str] = set()
        for callees in edges.values():
            called.update(callee for callee, _line in callees)
        for key in sorted(escaping):
            module_name = key.split("::", 1)[0]
            if key in called or module_name.startswith("repro.resilience"):
                continue
            summary = index.modules[module_name]
            fn = index.function(key)
            assert fn is not None
            for leaf in sorted(escaping[key]):
                hops: List[str] = [key.split("::", 1)[1]]
                cursor = key
                while (cursor, leaf) in via and len(hops) < 12:
                    cursor = via[(cursor, leaf)][0]
                    hops.append(cursor.split("::", 1)[1])
                yield Violation(
                    path=summary.display_path,
                    line=fn.line,
                    col=1,
                    rule="EXC101",
                    message=(
                        f"{leaf} can escape {fn.qualname}, which is not a "
                        f"registered isolation site ({escaping[key][leaf]}, "
                        f"path {' -> '.join(hops)}); contain it at an "
                        "isolation site, catch it at this boundary, or mark "
                        "an audited entry with '# exc: boundary'"
                    ),
                )

    # -- EXC102 ---------------------------------------------------------

    def _exc102(self, index: ProjectIndex) -> Iterator[Violation]:
        for key, summary, fn in index.functions():
            if fn.flow is None or not fn.flow.swallows:
                continue
            if "DocumentFailure" not in summary.defined_names:
                continue
            for line in fn.flow.swallows:
                yield Violation(
                    path=summary.display_path,
                    line=line,
                    col=1,
                    rule="EXC102",
                    message=(
                        f"broad handler in {fn.qualname} has a path that "
                        "swallows the exception with no DocumentFailure, no "
                        "re-raise and no trace event; record the failure on "
                        "every path or re-raise"
                    ),
                )
