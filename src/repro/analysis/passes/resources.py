"""Resource-lifecycle pass: RSRC101–102 over the CFG/dataflow facts.

Pools, executors, pipe connections, subprocesses, file handles and
checkpoint logs all hold OS resources that the long-lived serve layer
cannot afford to leak — a worker pool that survives an early ``return``
keeps its forked children alive; a checkpoint log left open loses its
tail on crash.  Both rules are *path* properties over the per-function
CFG (``with`` statements and ownership transfers are recognised and
exempt; explicit-raise unwinding paths are deliberately not blamed):

* **RSRC101** — a locally-acquired resource with some path from the
  acquisition to the normal exit on which no release method runs
  (``close``/``shutdown``/``terminate``/``join``/…), proven by a
  *backward must-release* dataflow analysis.  Resources that escape —
  returned, yielded, stored on ``self``, passed to another function —
  transfer ownership and are not tracked.
* **RSRC102** — a use of a resource (any method that is not a release
  or a status probe) at a point where a *forward must-closed* analysis
  proves a ``close``/``shutdown``/``terminate`` already ran on every
  path — an operation on a dead handle that fails at runtime.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.index import ProjectIndex
from repro.analysis.lint.engine import Violation
from repro.analysis.passes import Pass, PassRuleDoc, TreeProvider, register_pass


@register_pass
class ResourceLifecyclePass(Pass):
    pass_id = "resources"
    rules = {
        "RSRC101": PassRuleDoc(
            summary="every acquired resource is released on every path",
            doc=(
                "A backward must-release dataflow analysis over the CFG: at "
                "each acquisition (open(), ProcessPoolExecutor(), "
                "multiprocessing Pool/Pipe, Popen, CheckpointLog.open) the "
                "resource must be released on every path to the normal exit. "
                "with-blocks manage their own lifetime and escaping values "
                "(returned, yielded, stored, passed on) transfer ownership — "
                "neither is flagged; explicit-raise unwinding paths are not "
                "blamed (the analysis under-reports by design)."
            ),
            example=(
                "def flush(path, rows):\n"
                "    fh = open(path, 'w')\n"
                "    if not rows:\n"
                "        return          # <- RSRC101, fh never closed here\n"
                "    fh.write(render(rows))\n"
                "    fh.close()"
            ),
            fix=(
                "wrap the resource in a with-block, or release it in a "
                "try/finally so every path reaches the release"
            ),
        ),
        "RSRC102": PassRuleDoc(
            summary="no operation on a definitely-released resource",
            doc=(
                "A forward must-closed dataflow analysis over the CFG: when "
                "every path to a statement has already run close()/"
                "shutdown()/terminate() on a resource, any further method "
                "call on it (other than releases and status probes like "
                "is_alive/poll/done) operates on a dead handle and fails at "
                "runtime — typically only on the error path that reordered "
                "the teardown."
            ),
            example=(
                "fh = open(path, 'w')\n"
                "fh.close()\n"
                "fh.write(tail)      # <- RSRC102, definitely closed"
            ),
            fix=(
                "move the use before the release, or re-acquire the resource "
                "on the path that needs it"
            ),
        ),
    }

    def run(self, index: ProjectIndex, trees: TreeProvider) -> Iterator[Violation]:
        for key, summary, fn in index.functions():
            if fn.flow is None:
                continue
            for line, kind, var in fn.flow.leaks:
                yield Violation(
                    path=summary.display_path,
                    line=line,
                    col=1,
                    rule="RSRC101",
                    message=(
                        f"{kind} '{var}' acquired in {fn.qualname} has a path "
                        "to the exit that never releases it; use a with-block "
                        "or release it in a try/finally"
                    ),
                )
            for line, var, release in fn.flow.use_after_release:
                yield Violation(
                    path=summary.display_path,
                    line=line,
                    col=1,
                    rule="RSRC102",
                    message=(
                        f"'{var}' is used in {fn.qualname} after every path "
                        f"has already called .{release}() on it; move the use "
                        "before the release or re-acquire"
                    ),
                )
