"""Coordinate-frame dataflow: a taint lattice over bbox values.

The pipeline lives in two coordinate frames (``docs/ARCHITECTURE.md``):
the **original** frame of the input document and the **observed** frame
the deskewed OCR view works in; other codebases call the same split
``pixel`` vs ``normalized``.  Mixing frames in a comparison or an IoU
does not crash — it produces plausible-but-wrong geometry, the worst
failure mode a layout-IE system has (the valid-cut test and the
VS2-Select Pareto objectives both consume raw bbox extents).

The pass runs a lightweight intra- plus inter-procedural analysis:

* **Seeds.**  A trailing ``frame: observed`` pragma on a ``def`` line
  declares the frame of the bbox values a function consumes and
  produces; the converter form ``frame: original -> observed``
  declares both sides of a frame transition (e.g. ``deskew``); an
  assignment-line pragma (``box = load()  # frame: original``) seeds a
  single variable.  ``frame: any`` marks frame-polymorphic code, and a
  full-line ``# frame: any`` comment marks a whole module (the
  geometry layer, which works in whichever frame its caller chose).
* **Lattice.**  ``unknown`` is bottom; concrete labels (``original``,
  ``observed``, ``pixel``, ``normalized``, …) join to a conflict,
  which is reported where it happens.
* **Propagation.**  Assignments copy labels; attribute access keeps
  its base's label (``b.x2`` is in ``b``'s frame); BBox methods
  preserve the receiver's frame except ``scale``/``rotate``, which are
  the sanctioned frame *transitions* and therefore produce ``unknown``.
  Calls to frame-declared functions produce their declared frame and
  check their arguments against it.

Findings: ``FRAME101`` (arithmetic/comparison/IoU over two different
concrete frames), ``FRAME102`` (call site or return value violating a
declared frame contract), ``FRAME103`` (public geometry API handling
boxes with no declared or inferable frame).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.index import ModuleSummary, ProjectIndex
from repro.analysis.lint.engine import ModuleInfo, Violation
from repro.analysis.passes import Pass, PassRuleDoc, TreeProvider, register_pass

#: Methods that transition between frames: their result's frame is not
#: their receiver's, so taint stops (the conversion is the point).
_FRAME_BREAKING = {"scale", "rotate"}

#: Binary BBox methods whose receiver and first argument must share a
#: frame for the result to mean anything.
_FRAME_BINARY = {
    "iou",
    "intersection",
    "union",
    "intersects",
    "contains_bbox",
    "contains_point",
    "gap_distance",
    "centroid_l1_distance",
    "centroid_l2_distance",
    "sum_angular_distance",
    "clip",
}

#: The polymorphic label: compatible with everything, never concrete.
ANY = "any"


def _concrete(label: Optional[str]) -> bool:
    return label is not None and label != ANY


def _conflict(a: Optional[str], b: Optional[str]) -> bool:
    return _concrete(a) and _concrete(b) and a != b


class _Registry:
    """Frame declarations discovered across the whole index."""

    def __init__(self, index: ProjectIndex):
        #: function key -> (consumed, produced)
        self.by_key: Dict[str, Tuple[str, str]] = {}
        #: bare final name -> (consumed, produced); ambiguous names drop out.
        self.by_name: Dict[str, Optional[Tuple[str, str]]] = {}
        for key, _summary, fn in index.functions():
            if fn.frame is None:
                continue
            self.by_key[key] = fn.frame
            bare = fn.qualname.split(".")[-1]
            if bare in self.by_name and self.by_name[bare] != fn.frame:
                self.by_name[bare] = None  # ambiguous
            else:
                self.by_name[bare] = fn.frame

    def lookup_call(
        self, index: ProjectIndex, module: Optional[str], raw: Optional[str]
    ) -> Optional[Tuple[str, str]]:
        if raw is None:
            return None
        if module:
            key = index.resolve_call(module, raw)
            if key and key in self.by_key:
                return self.by_key[key]
        bare = raw.split(".")[-1]
        return self.by_name.get(bare) or None

    def relevant_names(self) -> Set[str]:
        return {name for name, frame in self.by_name.items() if frame}


class _FunctionAnalysis:
    """Single linear walk over one function body."""

    def __init__(
        self,
        info: ModuleInfo,
        index: ProjectIndex,
        registry: _Registry,
        node: ast.FunctionDef,
        declared: Optional[Tuple[str, str]],
        findings: List[Violation],
    ):
        self.info = info
        self.index = index
        self.registry = registry
        self.declared = declared
        self.findings = findings
        self.env: Dict[str, str] = {}
        if declared and _concrete(declared[0]):
            for arg in node.args.args:
                if arg.arg not in ("self", "cls"):
                    self.env[arg.arg] = declared[0]

    # -- reporting ------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(self.info.violation(node, rule, message))

    # -- expression labelling -------------------------------------------

    def label(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            return self.label(node.value)
        if isinstance(node, ast.Call):
            return self._label_call(node)
        if isinstance(node, ast.BinOp):
            left = self.label(node.left)
            right = self.label(node.right)
            if _conflict(left, right):
                self._report(
                    node,
                    "FRAME101",
                    f"arithmetic mixes coordinate frames ({left} vs {right}); "
                    "convert one side first (BBox.scale / deskew rotate_back)",
                )
            return left if _concrete(left) else right
        if isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            labels = [self.label(op) for op in operands]
            for a, b in zip(labels, labels[1:]):
                if _conflict(a, b):
                    self._report(
                        node,
                        "FRAME101",
                        f"comparison mixes coordinate frames ({a} vs {b}); "
                        "values in different frames are not comparable",
                    )
                    break
            return None
        if isinstance(node, (ast.Tuple, ast.List)):
            labels = [self.label(elt) for elt in node.elts]
            concrete = [l for l in labels if _concrete(l)]
            return concrete[0] if concrete and all(c == concrete[0] for c in concrete) else None
        if isinstance(node, ast.IfExp):
            body = self.label(node.body)
            orelse = self.label(node.orelse)
            return body if _concrete(body) else orelse
        return None

    def _label_call(self, node: ast.Call) -> Optional[str]:
        raw = self.info.resolve_call_name(node.func)
        declared = self.registry.lookup_call(self.index, self.info.module, raw)
        arg_labels = [self.label(a) for a in node.args]
        for kw in node.keywords:
            arg_labels.append(self.label(kw.value))
        if declared is not None:
            consumed, produced = declared
            if _concrete(consumed):
                for a, lbl in zip(node.args, arg_labels):
                    if _conflict(lbl, consumed):
                        self._report(
                            a,
                            "FRAME102",
                            f"argument is in the {lbl} frame but "
                            f"{(raw or '').split('.')[-1]}() declares "
                            f"'frame: {consumed}'; convert before the call",
                        )
            return produced if _concrete(produced) else None
        if isinstance(node.func, ast.Attribute):
            receiver = self.label(node.func.value)
            method = node.func.attr
            if method in _FRAME_BINARY and node.args:
                other = arg_labels[0]
                if _conflict(receiver, other):
                    self._report(
                        node,
                        "FRAME101",
                        f".{method}() mixes coordinate frames (receiver is "
                        f"{receiver}, argument is {other}); its result is "
                        "geometrically meaningless",
                    )
            if method in _FRAME_BREAKING:
                return None
            return receiver
        return None

    # -- statement walk -------------------------------------------------

    def walk(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                label = self.label(stmt.value)
                pragma = self.info.frame_pragmas.get(stmt.lineno)
                if pragma is not None:
                    label = pragma[1] if _concrete(pragma[1]) else None
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if label is None:
                            self.env.pop(target.id, None)
                        else:
                            self.env[target.id] = label
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                label = self.label(stmt.value)
                pragma = self.info.frame_pragmas.get(stmt.lineno)
                if pragma is not None:
                    label = pragma[1] if _concrete(pragma[1]) else None
                if isinstance(stmt.target, ast.Name):
                    if label is None:
                        self.env.pop(stmt.target.id, None)
                    else:
                        self.env[stmt.target.id] = label
            elif isinstance(stmt, ast.AugAssign):
                self.label(stmt.value)
            elif isinstance(stmt, ast.Expr):
                self.label(stmt.value)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    label = self.label(stmt.value)
                    if self.declared and _conflict(label, self.declared[1]):
                        self._report(
                            stmt,
                            "FRAME102",
                            f"returns a {label}-frame value but the function "
                            f"declares 'frame: …-> {self.declared[1]}'",
                        )
            elif isinstance(stmt, (ast.If, ast.While)):
                self.label(stmt.test)
                self.walk(stmt.body)
                self.walk(stmt.orelse)
            elif isinstance(stmt, ast.For):
                self.label(stmt.iter)
                self.walk(stmt.body)
                self.walk(stmt.orelse)
            elif isinstance(stmt, ast.With):
                self.walk(stmt.body)
            elif isinstance(stmt, ast.Try):
                self.walk(stmt.body)
                self.walk(stmt.orelse)
                self.walk(stmt.finalbody)
                for handler in stmt.handlers:
                    self.walk(handler.body)


@register_pass
class FramePass(Pass):
    pass_id = "frames"
    rules = {
        "FRAME101": PassRuleDoc(
            summary="no arithmetic/comparison/IoU across coordinate frames",
            doc=(
                "Tracks a frame label (original/observed, pixel/normalized, "
                "…) through assignments, attribute access and calls, seeded "
                "by 'frame:' pragmas; flags arithmetic, comparisons and "
                "binary BBox operations whose operands carry two different "
                "concrete frames — the mix-up that yields plausible-but-"
                "wrong geometry instead of a crash."
            ),
            example=(
                "a = observed_box(doc)     # from a 'frame: observed' fn\n"
                "b = layout_box(node)      # from a 'frame: original' fn\n"
                "overlap = a.iou(b)        # <- FRAME101"
            ),
            fix=(
                "convert one side across the frame boundary first "
                "(rotate_back / BBox.scale), then compare"
            ),
        ),
        "FRAME102": PassRuleDoc(
            summary="call sites and returns must honour declared frames",
            doc=(
                "A function with a 'frame: X' (or converter 'frame: X -> Y') "
                "pragma promises the frame of the bbox values it consumes "
                "and produces; passing a value tainted with a different "
                "concrete frame, or returning one, breaks the declared "
                "contract."
            ),
            example=(
                "def span(box):  # frame: observed\n"
                "    ...\n"
                "orig = layout_box(node)   # 'frame: original' producer\n"
                "span(orig)                # <- FRAME102"
            ),
            fix="convert the value to the declared frame before the call/return",
        ),
        "FRAME103": PassRuleDoc(
            summary="public geometry APIs must declare their frame",
            doc=(
                "A public function in repro.geometry that handles boxes but "
                "carries no 'frame:' pragma (and whose module declares none) "
                "leaves every caller guessing which frame its arguments live "
                "in — the documentation gap frame bugs grow from.  Most "
                "geometry is frame-polymorphic: declare '# frame: any' at "
                "module scope, or a concrete frame on the def line."
            ),
            example=(
                "# repro/geometry/overlap.py (no '# frame: any' comment)\n"
                "def overlap_ratio(box_a, box_b):   # <- FRAME103\n"
                "    ..."
            ),
            fix=(
                "add '# frame: any' as a full-line comment for polymorphic "
                "modules, or 'frame: observed' on the def line"
            ),
        ),
    }

    def run(self, index: ProjectIndex, trees: TreeProvider) -> Iterator[Violation]:
        registry = _Registry(index)
        relevant = registry.relevant_names()
        findings: List[Violation] = []

        for path in sorted(index.files):
            summary = index.files[path]
            yield from self._check_undeclared_geometry(summary)
            if not self._needs_ast(summary, relevant):
                continue
            info = trees.get(path)
            if info is None:
                continue
            for node in ast.walk(info.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    declared = info.frame_pragmas.get(node.lineno)
                    if declared == (ANY, ANY):
                        declared = None
                    analysis = _FunctionAnalysis(
                        info, index, registry, node, declared, findings
                    )
                    analysis.walk(node.body)
        yield from findings

    @staticmethod
    def _needs_ast(summary: ModuleSummary, relevant: Set[str]) -> bool:
        if summary.has_frame_pragmas:
            return True
        for fn in summary.functions.values():
            for raw, _line in fn.calls:
                if raw.split(".")[-1] in relevant:
                    return True
        return False

    @staticmethod
    def _check_undeclared_geometry(summary: ModuleSummary) -> Iterator[Violation]:
        module = summary.module or ""
        if not (module == "repro.geometry" or module.startswith("repro.geometry.")):
            return
        if summary.module_frame is not None:
            return
        for qual in sorted(summary.functions):
            fn = summary.functions[qual]
            leaf = qual.split(".")[-1]
            if leaf.startswith("_"):
                continue
            if fn.frame is not None:
                continue
            if not any("box" in p.lower() for p in fn.params):
                continue
            yield Violation(
                path=summary.display_path,
                line=fn.line,
                col=1,
                rule="FRAME103",
                message=(
                    f"public geometry API {qual}() handles boxes but declares no "
                    "frame; add a full-line '# frame: any' for frame-polymorphic "
                    "modules or a 'frame: <f>' pragma on the def line"
                ),
            )
