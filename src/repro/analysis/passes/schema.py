"""Trace-event exhaustiveness against the schema registry.

PR 3 gave the pipeline a decision-event layer: ``tracer.event("cut."
"decision", …)`` calls whose names downstream tooling (the explain
report, the Chrome-trace export, corpus diffing) matches on by string.
The names live in :data:`repro.trace.tracer.EVENT_NAMES`; nothing at
runtime stops a new call site from inventing ``"cut.descision"`` and
silently vanishing from every report.

This pass closes the loop statically, in both directions:

* ``SCHEMA001`` — a string-literal ``.event("…")`` name emitted from a
  ``repro.*`` module that the registry does not list (typo'd or simply
  never registered);
* ``SCHEMA002`` — a registered name no ``repro.*`` module ever emits
  (schema rot: the registry promises an event the pipeline no longer
  produces, and downstream consumers wait on it forever).

Emissions in tests and scripts are deliberately out of scope — a test
emitting a synthetic ``"stray"`` event at a tracer is testing, not
extending, the schema.  The pass is inert when the index contains no
registry (small fixture trees).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.index import ProjectIndex
from repro.analysis.lint.engine import Violation
from repro.analysis.passes import Pass, PassRuleDoc, TreeProvider, register_pass


@register_pass
class SchemaPass(Pass):
    pass_id = "schema"
    rules = {
        "SCHEMA001": PassRuleDoc(
            summary="emitted trace-event names must be registered",
            doc=(
                "Every string-literal tracer.event(name, …) emitted from a "
                "repro.* module must appear in the EVENT_NAMES registry "
                "(repro.trace.tracer); unregistered names are invisible to "
                "every downstream consumer that matches on event names, "
                "which is how typo'd events silently vanish from reports."
            ),
            example=(
                'tracer.event("cut.descision", depth=d)   # <- SCHEMA001\n'
                "# EVENT_NAMES registers 'cut.decision'"
            ),
            fix="fix the name, or add the new event to EVENT_NAMES",
        ),
        "SCHEMA002": PassRuleDoc(
            summary="registered trace-event names must be emitted",
            doc=(
                "A name in EVENT_NAMES that no repro.* module ever emits is "
                "schema rot: the registry promises an event the pipeline no "
                "longer produces, and consumers keyed on it wait forever."
            ),
            example=(
                'EVENT_NAMES = frozenset({"cut.decision", "ocr.retry"})\n'
                "# no module calls tracer.event('ocr.retry')  <- SCHEMA002"
            ),
            fix="drop the stale name from EVENT_NAMES (or restore the emitter)",
        ),
    }

    def run(self, index: ProjectIndex, trees: TreeProvider) -> Iterator[Violation]:
        registry: Optional[Tuple[List[str], int]] = None
        registry_module = None
        for name in sorted(index.modules):
            summary = index.modules[name]
            if summary.event_registry is not None:
                registry = summary.event_registry
                registry_module = summary
                break
        if registry is None or registry_module is None:
            return
        registered: Set[str] = set(registry[0])

        emitted: Set[str] = set()
        for name in sorted(index.modules):
            summary = index.modules[name]
            for event, line in summary.events:
                emitted.add(event)
                if event not in registered:
                    yield Violation(
                        path=summary.display_path,
                        line=line,
                        col=1,
                        rule="SCHEMA001",
                        message=(
                            f"trace event '{event}' is not in EVENT_NAMES "
                            f"({registry_module.module}); register it or fix "
                            "the name — unregistered events vanish from every "
                            "name-keyed consumer"
                        ),
                    )

        for event in sorted(registered - emitted):
            yield Violation(
                path=registry_module.display_path,
                line=registry[1],
                col=1,
                rule="SCHEMA002",
                message=(
                    f"EVENT_NAMES registers '{event}' but no repro.* module "
                    "emits it; drop the stale name or restore the emitter"
                ),
            )
