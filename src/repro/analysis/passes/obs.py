"""Metric-name exhaustiveness against the observability registry.

PR 8 gave the pipeline a labeled-metric layer: ``registry.counter(
"repro.docs.processed", …)`` calls whose names downstream tooling (the
Prometheus exporter, the JSONL dump, the run-health SLO engine) matches
on by string.  The declarations live in :data:`repro.obs.names.
METRIC_NAMES`; a :class:`~repro.obs.registry.MetricRegistry` built with
``strict=True`` rejects undeclared names at runtime, but the ambient
per-worker registries only hit that check on the code paths a given run
exercises.

This pass closes the loop statically, in both directions:

* ``OBS002`` — a string-literal ``.counter("…")`` / ``.gauge("…")`` /
  ``.histogram("…")`` name emitted from a ``repro.*`` module that
  ``METRIC_NAMES`` does not declare (typo'd or never registered: the
  first chaos run that reaches the call site dies on the strict-mode
  ``KeyError``);
* ``OBS003`` — a declared name no ``repro.*`` module ever emits
  (registry rot: exporters document a metric the pipeline no longer
  produces, and SLO rules keyed on it never fire).

Emissions in tests and scripts are deliberately out of scope — a test
driving a throwaway registry with a synthetic name is testing, not
extending, the metric schema.  The pass is inert when the index
contains no ``METRIC_NAMES`` registry (small fixture trees).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.index import ProjectIndex
from repro.analysis.lint.engine import Violation
from repro.analysis.passes import Pass, PassRuleDoc, TreeProvider, register_pass


@register_pass
class ObsPass(Pass):
    pass_id = "obs"
    rules = {
        "OBS002": PassRuleDoc(
            summary="emitted metric names must be declared in METRIC_NAMES",
            doc=(
                "Every string-literal .counter(name, …)/.gauge(name, …)/"
                ".histogram(name, …) emission from a repro.* module must "
                "appear in the METRIC_NAMES declaration table "
                "(repro.obs.names); a strict MetricRegistry raises KeyError "
                "on undeclared names, so a typo'd emission is a latent crash "
                "on whichever run first reaches that call site — and an "
                "undeclared name carries no kind/label/help metadata for the "
                "exporters."
            ),
            example=(
                'registry.counter("repro.docs.procesed", corpus=d).inc()\n'
                "# <- OBS002: METRIC_NAMES declares 'repro.docs.processed'"
            ),
            fix="fix the name, or add a MetricDecl to METRIC_NAMES",
        ),
        "OBS003": PassRuleDoc(
            summary="declared metric names must be emitted",
            doc=(
                "A name in METRIC_NAMES that no repro.* module ever emits is "
                "registry rot: the exporters and SLO rules document a metric "
                "the pipeline no longer produces, and dashboards keyed on it "
                "stay empty forever."
            ),
            example=(
                'METRIC_NAMES = {"repro.docs.skipped": MetricDecl(…), …}\n'
                "# no module emits 'repro.docs.skipped'  <- OBS003"
            ),
            fix="drop the stale declaration (or restore the emitter)",
        ),
    }

    def run(self, index: ProjectIndex, trees: TreeProvider) -> Iterator[Violation]:
        registry: Optional[Tuple[List[str], int]] = None
        registry_module = None
        for name in sorted(index.modules):
            summary = index.modules[name]
            if summary.metric_registry is not None:
                registry = summary.metric_registry
                registry_module = summary
                break
        if registry is None or registry_module is None:
            return
        declared: Set[str] = set(registry[0])

        emitted: Set[str] = set()
        for name in sorted(index.modules):
            summary = index.modules[name]
            for metric, line in summary.metrics:
                emitted.add(metric)
                if metric not in declared:
                    yield Violation(
                        path=summary.display_path,
                        line=line,
                        col=1,
                        rule="OBS002",
                        message=(
                            f"metric '{metric}' is not declared in "
                            f"METRIC_NAMES ({registry_module.module}); "
                            "declare it or fix the name — a strict registry "
                            "raises KeyError at this call site"
                        ),
                    )

        for metric in sorted(declared - emitted):
            yield Violation(
                path=registry_module.display_path,
                line=registry[1],
                col=1,
                rule="OBS003",
                message=(
                    f"METRIC_NAMES declares '{metric}' but no repro.* module "
                    "emits it; drop the stale declaration or restore the "
                    "emitter"
                ),
            )
