"""``BND1xx``: definite bound hazards from the value analysis.

The abstract interpreter (:mod:`repro.analysis.values`) records, per
function, subscripts and array constructions whose bounds it can prove
wrong on **every** execution the abstraction admits — not "maybe out
of range" but "out of range whenever this line runs".  This pass just
surfaces those cached hazards as findings; all the reasoning happened
at summary-build time, so a warm cache run re-emits them without
rebuilding anything.

The definite-only bar is what keeps the self-lint of ``src`` and
``tests`` clean: the prefix-sum fast path indexes with values the
domain cannot always bound, and a may-analysis would bury the one real
off-by-one under a hundred maybes.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.index import ProjectIndex
from repro.analysis.lint.engine import Violation
from repro.analysis.passes import Pass, PassRuleDoc, TreeProvider, register_pass


@register_pass
class BoundsPass(Pass):
    pass_id = "bounds"
    rules = {
        "BND101": PassRuleDoc(
            summary="subscript is provably out of bounds on every execution",
            doc=(
                "The interval analysis bounded both the index and the "
                "sequence length, and every admitted pair is out of range "
                "(index >= every possible length, or below -length).  "
                "Symbolic len(param) bounds make this catch the classic "
                "prefix-array off-by-one: row_prefix[n_rows + 1] against "
                "an array of length n_rows + 1."
            ),
            example="n = len(xs)\nreturn xs[n]",
            fix=(
                "Re-derive the index arithmetic; the last valid prefix "
                "index is len(xs) - 1 (use xs[n - 1], or extend the "
                "array).  If the analysis missed a narrowing invariant, "
                "hoist it into an explicit min()/max() clamp."
            ),
        ),
        "BND102": PassRuleDoc(
            summary="np.add.reduceat offsets are provably invalid",
            doc=(
                "reduceat requires its offsets to be in-range indices of "
                "the value array, and window semantics silently change "
                "when they are not sorted ascending.  This fires when the "
                "offset array's element interval is provably outside "
                "[0, len(values)) or the offsets are provably strictly "
                "decreasing (e.g. a reversed monotone index array)."
            ),
            example="starts = np.arange(4)[::-1]\nnp.add.reduceat(vals, starts)",
            fix=(
                "Build offsets ascending (drop the [::-1]; reverse the "
                "*result* if needed) and clamp them into range before the "
                "reduction: starts = np.clip(starts, 0, len(vals) - 1)."
            ),
        ),
        "BND103": PassRuleDoc(
            summary="array extent or BBox side is provably negative",
            doc=(
                "np.zeros/ones/empty/full/arange raise on negative sizes "
                "and BBox.__post_init__ raises on negative width/height; "
                "this fires when the interval analysis proves the extent "
                "negative on every execution — a guaranteed runtime crash "
                "hiding behind whichever path reaches the line."
            ),
            example="pad = -2\ncounts = np.zeros(pad)",
            fix=(
                "Fix the sign in the extent arithmetic, or clamp with "
                "max(0, n) when an empty result is the intended "
                "degenerate case."
            ),
        ),
    }

    def run(self, index: ProjectIndex, trees: TreeProvider) -> Iterator[Violation]:
        for key, summary, fn in index.functions():
            if fn.values is None:
                continue
            for line, rule, message in fn.values.hazards:
                yield Violation(
                    path=summary.display_path,
                    line=line,
                    col=1,
                    rule=rule,
                    message=f"{fn.qualname}: {message}",
                )
