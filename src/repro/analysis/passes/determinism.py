"""Determinism proofs: impurity propagated over the call graph.

The serial-vs-parallel byte-identity tests only hold if everything
Algorithm 1 / Eq. 1 executes is pure given its inputs.  The module-
scope rules (DET001–003) catch direct sins, but a function-local
import — the *sanctioned* layering escape hatch — lets a helper two
calls away draw from the wall clock or the environment without any
single file looking wrong.

This pass closes that hole.  It seeds an impurity set at the classic
sinks — global-RNG draws, wall-clock/entropy reads, ``os.environ``
access, ``dict.popitem``, unordered-``set`` iteration — and walks the
approximate call graph backwards from the pipeline's deterministic
entry points: every function defined in ``repro.core.segment``,
``repro.core.select`` and ``repro.core.merging`` (Algorithm 1, VS2-
Select, and the Eq. 1 merge loop).  Any sink transitively reachable
from an entry point is a ``DET101`` finding, reported at the sink with
the call chain that reaches it.

A function audited by a human can be excused with a trailing
``det: reviewed`` pragma on its ``def`` line: the pass neither reports
its sinks nor follows its calls.  Sinks that a module-scope rule
already reports on the same line (a global-RNG draw is DET001
everywhere, for instance) are deduplicated by the runner, so DET101
surfaces exactly the findings only whole-program analysis can see.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional

from repro.analysis.index import ProjectIndex
from repro.analysis.lint.engine import Violation
from repro.analysis.passes import Pass, PassRuleDoc, TreeProvider, register_pass

#: Modules whose functions are the roots of the determinism proof.
ENTRY_MODULES = (
    "repro.core.segment",
    "repro.core.select",
    "repro.core.merging",
)

_SINK_LABELS = {
    "rng": "draws from global RNG state",
    "clock": "reads the wall clock / OS entropy",
    "env": "reads the process environment",
    "popitem": "pops dict items in hash order",
    "set-iter": "iterates an unordered set",
}


@register_pass
class DeterminismPass(Pass):
    pass_id = "determinism"
    rules = {
        "DET101": PassRuleDoc(
            summary="no impure sink reachable from segment/select/merge",
            doc=(
                "Propagates impurity (global RNG, wall clock, os.environ, "
                "dict.popitem, set iteration) over the call graph; any sink "
                "transitively reachable from the deterministic entry points "
                "(repro.core.segment / .select / .merging) breaks the end-to-"
                "end byte-identity guarantee, even when it hides behind a "
                "function-local import the layer rules permit."
            ),
            example=(
                "# repro/core/segment.py\n"
                "def segment(doc):\n"
                "    from repro.harness.clock import stamp   # lazy import\n"
                "    return stamp()\n"
                "# repro/harness/clock.py\n"
                "def stamp():\n"
                "    return time.time()          # <- DET101, reachable sink"
            ),
            fix=(
                "pass the value in from the caller, or — after a human "
                "audit that the sink cannot reach the output — mark the "
                "sink's function with a trailing 'det: reviewed' pragma"
            ),
        ),
    }

    def run(self, index: ProjectIndex, trees: TreeProvider) -> Iterator[Violation]:
        graph = index.call_graph()
        roots = [
            key
            for key, summary, fn in index.functions()
            if summary.module in ENTRY_MODULES and not fn.det_reviewed
        ]
        # BFS with predecessor tracking for call-chain reporting.
        parent: Dict[str, Optional[str]] = {}
        queue = deque()
        for root in roots:
            if root not in parent:
                parent[root] = None
                queue.append(root)
        order: List[str] = []
        while queue:
            key = queue.popleft()
            order.append(key)
            fn = index.function(key)
            if fn is None or fn.det_reviewed:
                continue
            for callee in graph.get(key, ()):
                target = index.function(callee)
                if target is not None and target.det_reviewed:
                    continue
                if callee not in parent:
                    parent[callee] = key
                    queue.append(callee)

        def chain(key: str) -> str:
            names: List[str] = []
            cursor: Optional[str] = key
            while cursor is not None:
                names.append(cursor.split("::", 1)[1])
                cursor = parent[cursor]
            return " <- ".join(names)

        for key in order:
            fn = index.function(key)
            if fn is None or fn.det_reviewed:
                continue
            module_name = key.split("::", 1)[0]
            summary = index.modules[module_name]
            seen = set()
            for kind, detail, line in fn.sinks:
                if (kind, line) in seen:
                    continue
                seen.add((kind, line))
                yield Violation(
                    path=summary.display_path,
                    line=line,
                    col=1,
                    rule="DET101",
                    message=(
                        f"{detail} {_SINK_LABELS.get(kind, kind)} and is reachable "
                        f"from a deterministic entry point via {chain(key)}; pass the "
                        "value in from the caller or mark the audited function with "
                        "'det: reviewed'"
                    ),
                )
