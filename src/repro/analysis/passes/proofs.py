"""``PROOF1xx``: contract obligations the value analysis refutes.

:mod:`repro.analysis.proofs` classifies every ``@checked`` contract
site's post-conditions as PROVED / UNPROVEN / ASSUMED / VIOLATED.
The first three are ledger states (``repro check --proofs``); a
VIOLATED obligation is a lint failure — the analysis holds an abstract
counterexample showing the invariant broken on every execution it
admits — and this pass surfaces it with the interprocedural witness
chain embedded in the classification detail.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.index import ProjectIndex
from repro.analysis.lint.engine import Violation
from repro.analysis.passes import Pass, PassRuleDoc, TreeProvider, register_pass
from repro.analysis.proofs import classify_sites


@register_pass
class ProofPass(Pass):
    pass_id = "proofs"
    rules = {
        "PROOF101": PassRuleDoc(
            summary="a contract post-condition is provably violated",
            doc=(
                "Every @checked site decomposes into named proof "
                "obligations (see docs/STATIC_ANALYSIS.md).  This fires "
                "when the abstract interpretation proves one broken: a "
                "counter-fact on the checked function's return value "
                "(e.g. indices provably outside [0, len(points))) or a "
                "definite BND1xx hazard in a function the site reaches "
                "over the call graph.  The message carries the witness "
                "chain from the hazard back to the contract site."
            ),
            example=(
                "@checked(post=lambda front, points: "
                "check_pareto_front(points, front))\n"
                "def pareto_front(points):\n"
                "    return [len(points)]  # provably out of range"
            ),
            fix=(
                "Fix the violated invariant at the function named in the "
                "witness chain — the contract is right, the code is not.  "
                "A deliberately weakened fixture belongs under tests/"
                "fixtures/ where the self-lint does not walk."
            ),
        ),
    }

    def run(self, index: ProjectIndex, trees: TreeProvider) -> Iterator[Violation]:
        path_of = {
            key: summary.display_path for key, summary, _fn in index.functions()
        }
        for site in classify_sites(index):
            for name, detail in site.violated():
                yield Violation(
                    path=path_of.get(site.key, ""),
                    line=site.line,
                    col=1,
                    rule="PROOF101",
                    message=(
                        f"{site.key.split('::', 1)[1]}: contract obligation "
                        f"'{name}' is VIOLATED — {detail}"
                    ),
                )
