"""Interprocedural analysis passes over the :class:`ProjectIndex`.

Where a module-scope rule (:mod:`repro.analysis.lint.rules`) sees one
file, a *pass* sees the whole program: the import graph, the call
graph, and every module's summary at once.  Ten pass families ship:

* :mod:`~repro.analysis.passes.determinism` — ``DET1xx``: impurity
  propagated over the call graph from the pipeline's deterministic
  entry points (closes the lazy-import escape hatch the layer rules
  deliberately leave open);
* :mod:`~repro.analysis.passes.frames` — ``FRAME1xx``: a coordinate-
  frame taint lattice over bbox dataflow;
* :mod:`~repro.analysis.passes.exports` — ``DEAD0xx``: dead
  compatibility shims and import-name drift;
* :mod:`~repro.analysis.passes.schema` — ``SCHEMA0xx``: statically
  discovered ``tracer.event(...)`` names checked for exhaustiveness
  against the trace schema registry;
* :mod:`~repro.analysis.passes.obs` — ``OBS0xx``: statically
  discovered metric emissions checked for exhaustiveness against the
  ``METRIC_NAMES`` observability registry;
* :mod:`~repro.analysis.passes.concurrency` — ``CONC1xx``: worker-
  reachable module-state writes, unpicklable values into process
  boundaries, fork-after-thread / pool-at-import ordering hazards;
* :mod:`~repro.analysis.passes.exceptions` — ``EXC1xx``: typed faults
  escaping the isolation-site registry, silent swallow paths;
* :mod:`~repro.analysis.passes.resources` — ``RSRC1xx``: acquire/
  release path proofs for pools, handles and checkpoint logs;
* :mod:`~repro.analysis.passes.bounds` — ``BND1xx``: definite
  out-of-bounds / negative-extent hazards from the abstract
  interpreter (:mod:`repro.analysis.values`);
* :mod:`~repro.analysis.passes.proofs` — ``PROOF1xx``: contract
  post-conditions the value analysis proves violated, with the
  interprocedural witness chain.

The CONC/EXC/RSRC trio is *flow-sensitive*: they consume the
per-function CFG facts (:mod:`repro.analysis.flow`) the index computes
and caches; BND/PROOF consume the cached value summaries the same way.
A warm run re-runs all of them without rebuilding a single CFG.

A pass declares the rule IDs it can emit (with docs for ``--explain``)
and implements ``run(index, trees)``; ``trees`` lends out parsed
:class:`ModuleInfo` objects for the few passes that need syntax, so a
warm cache run only re-parses files a pass actually asks for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional

from repro.analysis.index import ProjectIndex
from repro.analysis.lint.engine import ModuleInfo, Violation


@dataclass(frozen=True)
class PassRuleDoc:
    """Documentation for one rule a pass can emit (feeds --explain)."""

    summary: str
    doc: str
    example: str
    fix: str


class TreeProvider:
    """Lends parsed :class:`ModuleInfo` objects to passes on demand.

    Files parsed during this run are served from memory; cache-hit
    files are re-parsed lazily the first time a pass asks.  Returns
    ``None`` for unknown or unparseable paths.
    """

    def __init__(self, loader: Callable[[str], Optional[ModuleInfo]]):
        self._loader = loader
        self._trees: Dict[str, Optional[ModuleInfo]] = {}

    def seed(self, display_path: str, info: ModuleInfo) -> None:
        self._trees[display_path] = info

    def get(self, display_path: str) -> Optional[ModuleInfo]:
        if display_path not in self._trees:
            self._trees[display_path] = self._loader(display_path)
        return self._trees[display_path]


class Pass:
    """Base class: subclass, set ``pass_id``/``rules``, implement ``run``."""

    pass_id: str = ""
    #: rule_id -> PassRuleDoc for every rule this pass can emit.
    rules: Dict[str, PassRuleDoc] = {}

    def run(self, index: ProjectIndex, trees: TreeProvider) -> Iterator[Violation]:
        raise NotImplementedError


#: pass_id -> pass instance, in registration order.
ALL_PASSES: Dict[str, Pass] = {}


def register_pass(cls):
    """Class decorator adding a pass to :data:`ALL_PASSES`."""
    if not cls.pass_id:
        raise ValueError(f"{cls.__name__} has no pass_id")
    if cls.pass_id in ALL_PASSES:
        raise ValueError(f"duplicate pass id {cls.pass_id}")
    ALL_PASSES[cls.pass_id] = cls()
    return cls


def load_catalogue() -> Dict[str, Pass]:
    """Import every pass module (registering the catalogue) and return it."""
    from repro.analysis.passes import (  # noqa: F401
        bounds,
        concurrency,
        determinism,
        exceptions,
        exports,
        frames,
        obs,
        proofs,
        resources,
        schema,
    )

    return ALL_PASSES
