"""Dead re-export shims and import-name drift.

PR 2 split several modules and left behind compatibility shims — pure
re-export modules whose only job is keeping old import paths alive.
Shims are cheap to add and never removed, because no per-file check can
answer the one question that matters: *does anybody still import this?*
The import graph can.

``DEAD001`` fires on a re-export-only module (docstring + imports +
``__all__`` and nothing else) that no other file in the project imports
— directly, by submodule, or by pulling one of its names out of its
parent package.  Only shims that declare ``__all__`` are considered:
an ``__all__``-less import-only module is usually a namespace package
``__init__`` or a fixture, not a shim contract.

``DEAD002`` fires on ``from M import N`` where ``M`` is inside the
index but ``N`` is not defined there, not re-exported, not a
submodule — the name drift that otherwise only explodes at import
time on whichever machine imports the stale path first.  Modules with
``__getattr__`` or star imports are exempt (their namespace is not
statically knowable).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.index import ProjectIndex
from repro.analysis.lint.engine import Violation
from repro.analysis.passes import Pass, PassRuleDoc, TreeProvider, register_pass


@register_pass
class ExportsPass(Pass):
    pass_id = "exports"
    rules = {
        "DEAD001": PassRuleDoc(
            summary="re-export shims must still have importers",
            doc=(
                "A module that only re-exports names (docstring + imports + "
                "__all__, nothing else) exists solely to keep old import "
                "paths alive; when no file in the project imports it or "
                "pulls its names from the parent package any more, the shim "
                "is dead weight and should be deleted."
            ),
            example=(
                "# repro/core/merge.py — shim left by a refactor\n"
                '"""Deprecated: use repro.core.merging."""\n'
                "from repro.core.merging import merge_pass\n"
                '__all__ = ["merge_pass"]\n'
                "# ...and no file imports repro.core.merge  <- DEAD001"
            ),
            fix="delete the shim (or the import path it preserved, if truly public)",
        ),
        "DEAD002": PassRuleDoc(
            summary="'from M import N' must resolve statically",
            doc=(
                "For modules inside the index, every name pulled out of "
                "them must be defined there, re-exported at module scope, "
                "or name a submodule.  A miss is import-name drift from a "
                "rename/split and raises ImportError at import time — "
                "often only on the one code path (or machine) that still "
                "uses the stale name."
            ),
            example=(
                "from repro.core.merging import merge_passes  # renamed\n"
                "# repro.core.merging defines merge_pass      <- DEAD002"
            ),
            fix="update the import to the renamed symbol (or restore the re-export)",
        ),
    }

    def run(self, index: ProjectIndex, trees: TreeProvider) -> Iterator[Violation]:
        # DEAD001: dead shims.
        for name in sorted(index.modules):
            summary = index.modules[name]
            if not summary.reexport_only or summary.all_names is None:
                continue
            if index.importers_of(name):
                continue
            line = 1
            for record in summary.imports:
                line = record.line
                break
            yield Violation(
                path=summary.display_path,
                line=line,
                col=1,
                rule="DEAD001",
                message=(
                    f"re-export shim {name} has no importers anywhere in the "
                    "project; delete it (nothing depends on this compatibility "
                    "path any more)"
                ),
            )

        # DEAD002: unresolvable from-imports against in-index modules.
        for path in sorted(index.files):
            summary = index.files[path]
            for record in summary.imports:
                if record.names is None or "*" in record.names:
                    continue
                if record.module not in index.modules:
                    continue
                for imported in record.names:
                    if index.resolves_name(record.module, imported):
                        continue
                    yield Violation(
                        path=path,
                        line=record.line,
                        col=1,
                        rule="DEAD002",
                        message=(
                            f"'from {record.module} import {imported}' cannot "
                            f"resolve: {record.module} defines no '{imported}' "
                            "(renamed or removed symbol — this raises "
                            "ImportError at import time)"
                        ),
                    )
