"""Shared plumbing for the flow-sensitive pass families.

The CONC/EXC/RSRC passes all consume the same two artefacts:

* the **sharpened call graph** — the PR 4 approximate call graph plus
  the flow layer's ``typed_calls`` edges (``x = Ctor(); x.meth()`` and
  ``self.attr.meth()`` receiver typing).  The extra edges live in
  their own summary field so the PR 4 passes are untouched; the flow
  passes merge them here.
* **witness chains** — interprocedural findings must say *how* the
  property propagates ("pool created via run <- _run_parallel"), so
  the reachability helpers track parent pointers and render the same
  ``a <- b <- c`` chains DET101 uses.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.index import ProjectIndex


def flow_call_edges(index: ProjectIndex) -> Dict[str, List[Tuple[str, int]]]:
    """``caller key -> [(callee key, call line), ...]`` over both the
    plain and the type-sharpened call edges."""
    edges: Dict[str, List[Tuple[str, int]]] = {}
    for key, summary, fn in index.functions():
        module = summary.module or ""
        out: List[Tuple[str, int]] = []
        seen: Set[Tuple[str, int]] = set()
        for raw, line in list(fn.calls) + list(fn.typed_calls):
            resolved = index.resolve_call(module, raw)
            if resolved and resolved != key and (resolved, line) not in seen:
                seen.add((resolved, line))
                out.append((resolved, line))
        edges[key] = out
    return edges


def flow_graph(edges: Dict[str, List[Tuple[str, int]]]) -> Dict[str, List[str]]:
    return {
        caller: sorted({callee for callee, _line in callees})
        for caller, callees in edges.items()
    }


def reach_from(
    graph: Dict[str, List[str]], roots: Iterable[str]
) -> Dict[str, Optional[str]]:
    """Forward BFS: every function reachable from ``roots`` along call
    edges, mapped to its BFS parent (roots map to ``None``)."""
    parent: Dict[str, Optional[str]] = {}
    queue = deque()
    for root in roots:
        if root not in parent:
            parent[root] = None
            queue.append(root)
    while queue:
        key = queue.popleft()
        for callee in graph.get(key, ()):
            if callee not in parent:
                parent[callee] = key
                queue.append(callee)
    return parent


def reaches_any(
    graph: Dict[str, List[str]], seeds: Set[str]
) -> Dict[str, Optional[str]]:
    """Backward closure: every function from which some ``seed`` is
    reachable, mapped to the *next hop towards the seed* (seeds map to
    ``None``).  Follow the pointers to render a witness chain."""
    reverse: Dict[str, List[str]] = {}
    for caller, callees in graph.items():
        for callee in callees:
            reverse.setdefault(callee, []).append(caller)
    towards: Dict[str, Optional[str]] = {}
    queue = deque()
    for seed in seeds:
        towards[seed] = None
        queue.append(seed)
    while queue:
        key = queue.popleft()
        for caller in reverse.get(key, ()):
            if caller not in towards:
                towards[caller] = key
                queue.append(caller)
    return towards


def chain(parent: Dict[str, Optional[str]], key: str) -> str:
    """Render ``key``'s witness chain as ``leaf <- ... <- root``."""
    names: List[str] = []
    cursor: Optional[str] = key
    while cursor is not None and len(names) < 12:
        names.append(cursor.split("::", 1)[1])
        cursor = parent.get(cursor)
    return " <- ".join(names)


def forward_chain(towards: Dict[str, Optional[str]], key: str) -> str:
    """Render the path from ``key`` towards its seed as ``a -> b -> c``."""
    names: List[str] = []
    cursor: Optional[str] = key
    while cursor is not None and len(names) < 12:
        names.append(cursor.split("::", 1)[1])
        cursor = towards.get(cursor)
    return " -> ".join(names)
