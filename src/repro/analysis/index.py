"""The whole-program index behind ``repro check``.

The per-file linter of :mod:`repro.analysis.lint` sees one module at a
time, which is exactly the scope a function-local import escapes: a
helper two calls away can draw from the wall clock or mix coordinate
frames without any single file looking wrong.  This module builds the
**ProjectIndex** the interprocedural passes run on:

* a **module table** — one :class:`ModuleSummary` per parsed file:
  top-level symbols, ``__all__``, every import (module-scope *and*
  function-local, each tagged with its scope), emitted trace-event
  names, pragmas and noqa marks;
* an **import graph** — :meth:`ProjectIndex.importers_of` answers
  "who imports module M or any name from it", the liveness question
  behind dead-shim detection;
* an **approximate call graph** over ``repro.*`` —
  :meth:`ProjectIndex.resolve_call` maps the alias-expanded call names
  recorded per function to defined functions, following ``from X
  import Y`` re-export chains; ``self.``/``cls.`` calls resolve within
  the enclosing class.  Calls on arbitrary objects stay unresolved
  (the graph under-approximates, by design: a missing edge can hide a
  finding, a fabricated edge would invent one).

Summaries are plain data (``to_dict``/``from_dict`` round-trip) so the
content-hash cache (:mod:`repro.analysis.cache`) can persist them and
a warm run can rebuild the index without re-parsing a single file, and
so multiprocess builds (``repro check --jobs N``) can ship them across
process boundaries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import build_cfg
from repro.analysis.flow import (
    FlowSummary,
    Resolver,
    _is_constructor_name,
    compute_flow,
    local_constructor_types,
    module_conc_events,
)
from repro.analysis.lint.engine import ModuleInfo, NoqaMark
from repro.analysis.values import ValueSummary, analyze_function

# ----------------------------------------------------------------------
# Impurity sinks (the determinism pass's seed set)
# ----------------------------------------------------------------------

#: numpy.random attributes that construct seeded generators rather than
#: drawing from hidden global state (mirrors the DET001 rule).
_NP_RANDOM_OK = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "Philox", "SFC64", "MT19937",
}
_STDLIB_RANDOM_OK = {"Random", "SystemRandom"}

#: Wall-clock / entropy calls (the DET002 seed set).  Monotonic and
#: process clocks stay out: timing work never changes what it produced.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: Environment reads: ambient process state a "deterministic" function
#: must not consult.
_ENV_CALLS = {"os.getenv", "os.environ.get", "os.environ.setdefault"}


def _call_sink(name: str, unseeded: bool) -> Optional[Tuple[str, str]]:
    """``(kind, detail)`` when the resolved call name is an impure sink."""
    if name.startswith("random.") and name.count(".") == 1:
        attr = name.split(".", 1)[1]
        if attr not in _STDLIB_RANDOM_OK:
            return ("rng", name)
        if attr == "Random" and unseeded:
            return ("rng", name + " (unseeded)")
    elif name.startswith("numpy.random."):
        attr = name.rsplit(".", 1)[1]
        if attr not in _NP_RANDOM_OK:
            return ("rng", name)
        if attr == "default_rng" and unseeded:
            return ("rng", name + " (unseeded)")
    if name in _WALL_CLOCK or name.startswith("secrets."):
        return ("clock", name)
    if name in _ENV_CALLS:
        return ("env", name)
    return None


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------


@dataclass
class FunctionSummary:
    """One function or method, as the passes see it.

    ``calls`` hold alias-expanded dotted names (``repro.ocr.cache.
    transcribe_and_clean``, ``merge_pass``, ``VS2Segmenter._split``)
    still to be resolved against the index; nested ``def``s fold into
    their enclosing named function.
    """

    qualname: str
    line: int
    calls: List[Tuple[str, int]] = field(default_factory=list)
    sinks: List[Tuple[str, str, int]] = field(default_factory=list)
    det_reviewed: bool = False
    #: (consumed frame, produced frame) from a ``frame:`` pragma.
    frame: Optional[Tuple[str, str]] = None
    #: parameter names, in order (frame pass call-site checking).
    params: List[str] = field(default_factory=list)
    #: call edges only the flow layer's type sharpening can see
    #: (``x = Ctor(); x.meth()``, ``self.attr.meth()``) — kept separate
    #: from ``calls`` so the PR 4 passes are byte-for-byte unchanged.
    typed_calls: List[Tuple[str, int]] = field(default_factory=list)
    #: CFG-derived facts (``None`` when every fact list is empty).
    flow: Optional[FlowSummary] = None
    #: ``conc: ambient`` pragma — module-state writes are sanctioned.
    conc_ambient: bool = False
    #: ``exc: boundary`` pragma — reviewed fault boundary.
    exc_boundary: bool = False
    #: abstract-interpretation facts (``None`` when the summary is empty).
    values: Optional["ValueSummary"] = None
    #: contract check sites: resolved ``check_*`` names from
    #: ``repro.analysis.contracts`` used in this function (decorator
    #: lambdas included), with their lines.
    contracts: List[Tuple[str, int]] = field(default_factory=list)
    #: ``# proof: assumed`` pragma — unproven obligations are reviewed.
    proof_assumed: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "calls": [list(c) for c in self.calls],
            "sinks": [list(s) for s in self.sinks],
            "det_reviewed": self.det_reviewed,
            "frame": list(self.frame) if self.frame else None,
            "params": list(self.params),
            "typed_calls": [list(c) for c in self.typed_calls],
            "flow": self.flow.to_dict() if self.flow is not None else None,
            "conc_ambient": self.conc_ambient,
            "exc_boundary": self.exc_boundary,
            "values": self.values.to_dict() if self.values is not None else None,
            "contracts": [list(c) for c in self.contracts],
            "proof_assumed": self.proof_assumed,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FunctionSummary":
        flow_data = data.get("flow")
        values_data = data.get("values")
        return FunctionSummary(
            qualname=str(data["qualname"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            calls=[(str(n), int(ln)) for n, ln in data["calls"]],  # type: ignore[union-attr]
            sinks=[(str(k), str(d), int(ln)) for k, d, ln in data["sinks"]],  # type: ignore[union-attr]
            det_reviewed=bool(data["det_reviewed"]),
            frame=tuple(data["frame"]) if data["frame"] else None,  # type: ignore[arg-type]
            params=[str(p) for p in data["params"]],  # type: ignore[union-attr]
            typed_calls=[
                (str(n), int(ln)) for n, ln in data.get("typed_calls", [])  # type: ignore[union-attr]
            ],
            flow=FlowSummary.from_dict(flow_data) if flow_data else None,  # type: ignore[arg-type]
            conc_ambient=bool(data.get("conc_ambient", False)),
            exc_boundary=bool(data.get("exc_boundary", False)),
            values=ValueSummary.from_dict(values_data) if values_data else None,  # type: ignore[arg-type]
            contracts=[
                (str(n), int(ln)) for n, ln in data.get("contracts", [])  # type: ignore[union-attr]
            ],
            proof_assumed=bool(data.get("proof_assumed", False)),
        )


@dataclass
class ImportRecord:
    """One import statement, tagged with where it executes.

    ``scope`` is ``"module"`` for load-time imports (including inside
    module-level ``if``/``try`` and ``TYPE_CHECKING`` blocks) or the
    qualname of the enclosing function for the lazy-import escape
    hatch.  ``module`` is absolute (relative imports are resolved
    against the owning module's package).
    """

    module: str
    #: ``None`` for ``import M``; imported names for ``from M import …``
    #: (original names, not asnames; ``*`` appears literally).
    names: Optional[List[str]]
    line: int
    scope: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "names": self.names,
            "line": self.line,
            "scope": self.scope,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "ImportRecord":
        return ImportRecord(
            module=str(data["module"]),
            names=list(data["names"]) if data["names"] is not None else None,  # type: ignore[arg-type]
            line=int(data["line"]),  # type: ignore[arg-type]
            scope=str(data["scope"]),
        )


@dataclass
class ModuleSummary:
    """Everything the interprocedural passes need from one file."""

    display_path: str
    module: Optional[str]
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, List[str]] = field(default_factory=dict)
    imports: List[ImportRecord] = field(default_factory=list)
    defined_names: Set[str] = field(default_factory=set)
    all_names: Optional[List[str]] = None
    reexport_only: bool = False
    has_getattr: bool = False
    #: ``tracer.event("…")`` literal names emitted by this module.
    events: List[Tuple[str, int]] = field(default_factory=list)
    #: contents of a module-scope ``EVENT_NAMES = frozenset({…})``.
    event_registry: Optional[Tuple[List[str], int]] = None
    #: ``.counter("…")`` / ``.gauge("…")`` / ``.histogram("…")`` literal
    #: metric names emitted by this module.
    metrics: List[Tuple[str, int]] = field(default_factory=list)
    #: keys of a module-scope ``METRIC_NAMES = {…}`` dict literal.
    metric_registry: Optional[Tuple[List[str], int]] = None
    noqa: Dict[int, NoqaMark] = field(default_factory=dict)
    module_frame: Optional[str] = None
    #: True when the frame pass needs this file's AST (it carries
    #: function-level or assignment-level frame pragmas).
    has_frame_pragmas: bool = False
    #: thread/pool/call ordering events in import-time code.
    module_conc_events: List[Tuple[int, str, str]] = field(default_factory=list)
    #: full-line ``# conc: ambient`` — whole module is sanctioned state.
    conc_ambient: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "display_path": self.display_path,
            "module": self.module,
            "functions": {k: f.to_dict() for k, f in self.functions.items()},
            "classes": {k: list(v) for k, v in self.classes.items()},
            "imports": [r.to_dict() for r in self.imports],
            "defined_names": sorted(self.defined_names),
            "all_names": self.all_names,
            "reexport_only": self.reexport_only,
            "has_getattr": self.has_getattr,
            "events": [list(e) for e in self.events],
            "event_registry": (
                [self.event_registry[0], self.event_registry[1]]
                if self.event_registry
                else None
            ),
            "metrics": [list(e) for e in self.metrics],
            "metric_registry": (
                [self.metric_registry[0], self.metric_registry[1]]
                if self.metric_registry
                else None
            ),
            "noqa": {str(line): mark.to_dict() for line, mark in self.noqa.items()},
            "module_frame": self.module_frame,
            "has_frame_pragmas": self.has_frame_pragmas,
            "module_conc_events": [list(e) for e in self.module_conc_events],
            "conc_ambient": self.conc_ambient,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "ModuleSummary":
        registry = data["event_registry"]
        metric_registry = data.get("metric_registry")
        return ModuleSummary(
            display_path=str(data["display_path"]),
            module=data["module"],  # type: ignore[arg-type]
            functions={
                k: FunctionSummary.from_dict(v)
                for k, v in data["functions"].items()  # type: ignore[union-attr]
            },
            classes={k: list(v) for k, v in data["classes"].items()},  # type: ignore[union-attr]
            imports=[ImportRecord.from_dict(r) for r in data["imports"]],  # type: ignore[union-attr]
            defined_names=set(data["defined_names"]),  # type: ignore[arg-type]
            all_names=list(data["all_names"]) if data["all_names"] is not None else None,  # type: ignore[arg-type]
            reexport_only=bool(data["reexport_only"]),
            has_getattr=bool(data["has_getattr"]),
            events=[(str(n), int(ln)) for n, ln in data["events"]],  # type: ignore[union-attr]
            event_registry=(
                ([str(n) for n in registry[0]], int(registry[1]))  # type: ignore[index]
                if registry
                else None
            ),
            metrics=[
                (str(n), int(ln)) for n, ln in data.get("metrics", [])  # type: ignore[union-attr]
            ],
            metric_registry=(
                ([str(n) for n in metric_registry[0]], int(metric_registry[1]))  # type: ignore[index]
                if metric_registry
                else None
            ),
            noqa={
                int(line): NoqaMark.from_dict(mark)
                for line, mark in data["noqa"].items()  # type: ignore[union-attr]
            },
            module_frame=data["module_frame"],  # type: ignore[arg-type]
            has_frame_pragmas=bool(data["has_frame_pragmas"]),
            module_conc_events=[
                (int(ln), str(k), str(d))
                for ln, k, d in data.get("module_conc_events", [])  # type: ignore[union-attr]
            ],
            conc_ambient=bool(data.get("conc_ambient", False)),
        )

    def suppressed(self, line: int, rule_id: str) -> bool:
        mark = self.noqa.get(line)
        return mark is not None and mark.suppresses(rule_id)


# ----------------------------------------------------------------------
# Building a summary from a parsed module
# ----------------------------------------------------------------------


def _resolve_relative(module: Optional[str], is_package: bool, level: int, target: Optional[str]) -> Optional[str]:
    """Absolute module for a ``from .x import y`` (level >= 1) import."""
    if module is None:
        return target
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop > len(parts):
        return None
    base = parts[: len(parts) - drop] if drop else parts
    if target:
        return ".".join(base + [target]) if base else target
    return ".".join(base) or None


class _FunctionWalker(ast.NodeVisitor):
    """Collects calls, sinks and local imports for one function body."""

    def __init__(self, info: "ModuleInfo", summary: FunctionSummary, aliases: Dict[str, str], class_name: Optional[str]):
        self.info = info
        self.summary = summary
        self.aliases = aliases
        self.class_name = class_name

    def _resolve(self, node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in ("self", "cls") and self.class_name:
            # self.meth(...) -> ClassName.meth, resolvable in-module.
            if len(parts) == 1:
                return f"{self.class_name}.{parts[0]}"
            return None
        expanded = self.aliases.get(root, root)
        parts.append(expanded)
        return ".".join(reversed(parts))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module
        if node.level:
            base = _resolve_relative(
                self.info.module, self.info.path.name == "__init__.py", node.level, node.module
            )
        if base:
            for alias in node.names:
                if alias.name != "*":
                    self.aliases[alias.asname or alias.name] = f"{base}.{alias.name}"

    def visit_Call(self, node: ast.Call) -> None:
        name = self._resolve(node.func)
        line = node.lineno
        if name is not None:
            self.summary.calls.append((name, line))
            unseeded = not node.args and not node.keywords
            sink = _call_sink(name, unseeded)
            if sink:
                self.summary.sinks.append((sink[0], sink[1], line))
        if isinstance(node.func, ast.Attribute) and node.func.attr == "popitem":
            self.summary.sinks.append(
                ("popitem", "dict.popitem() pops in hash order", line)
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # os.environ["X"] reads ambient process state.
        target = self._resolve(node.value)
        if target == "os.environ":
            self.summary.sinks.append(("env", "os.environ[...]", node.lineno))
        self.generic_visit(node)

    def _check_set_iteration(self, iter_node: ast.AST) -> None:
        if _is_set_expression(iter_node):
            self.summary.sinks.append(
                ("set-iter", "iteration over an unordered set", iter_node.lineno)
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension_gens(self, node) -> None:
        for gen in node.generators:
            self._check_set_iteration(gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_gens(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_gens(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_gens(node)
        self.generic_visit(node)


def _literal_strings(node: ast.AST) -> Optional[List[str]]:
    """Strings of a ``{"a", "b"}`` / ``frozenset({"a"})`` literal."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("frozenset", "set") and len(node.args) == 1:
            return _literal_strings(node.args[0])
        return None
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        out = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
            else:
                return None
        return out
    return None


def _literal_dict_keys(node: ast.AST) -> Optional[List[str]]:
    """String keys of a ``{"a": …, "b": …}`` dict literal."""
    if not isinstance(node, ast.Dict):
        return None
    out = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            out.append(key.value)
        else:
            return None
    return out


def _class_attr_types(node: ast.ClassDef, resolver: Resolver) -> Dict[str, str]:
    """``attr -> constructed class`` for ``self.attr = Ctor(...)``
    assignments that agree across the whole class body (a conflicting
    assignment drops the attribute — sharpening must never guess)."""
    out: Dict[str, Optional[str]] = {}
    for sub in ast.walk(node):
        if not (isinstance(sub, ast.Assign) and len(sub.targets) == 1):
            continue
        target = sub.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        ctor: Optional[str] = None
        if isinstance(sub.value, ast.Call):
            resolved = resolver.resolve(sub.value.func)
            if resolved and _is_constructor_name(resolved):
                ctor = resolved
        if target.attr not in out:
            out[target.attr] = ctor
        elif out[target.attr] != ctor:
            out[target.attr] = None
    return {attr: ctor for attr, ctor in out.items() if ctor}


def summarize_module(info: ModuleInfo) -> ModuleSummary:
    """Distill a parsed :class:`ModuleInfo` into its plain-data summary.

    Two phases: the body walk collects symbols, imports and the set of
    module-level names first; function bodies are then summarised
    against that *complete* table, because the flow layer's
    module-state analysis needs to know every module-level name — even
    ones defined after the function — before it can classify a write.
    """
    summary = ModuleSummary(
        display_path=info.display_path,
        module=info.module,
        noqa=dict(info.noqa),
        module_frame=info.module_frame,
        has_frame_pragmas=bool(info.frame_pragmas),
        conc_ambient=info.module_conc_ambient,
    )
    is_package = info.path.name == "__init__.py"
    #: deferred function walks: (node, qualname, class name, attr types).
    pending: List[Tuple[ast.AST, str, Optional[str], Dict[str, str]]] = []

    only_imports = True
    saw_docstring = False

    def record_import(node: ast.stmt, scope: str) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                summary.imports.append(
                    ImportRecord(alias.name, None, node.lineno, scope)
                )
                if scope == "module":
                    summary.defined_names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            base = node.module
            if node.level:
                base = _resolve_relative(info.module, is_package, node.level, node.module)
            if base:
                summary.imports.append(
                    ImportRecord(base, [a.name for a in node.names], node.lineno, scope)
                )
                if scope == "module":
                    for a in node.names:
                        if a.name != "*":
                            summary.defined_names.add(a.asname or a.name)

    def module_aliases() -> Dict[str, str]:
        return dict(info.import_aliases)

    def walk_function(
        node, qualname: str, class_name: Optional[str], attr_types: Dict[str, str]
    ) -> None:
        fn = FunctionSummary(
            qualname=qualname,
            line=node.lineno,
            det_reviewed=node.lineno in info.det_reviewed_lines,
            frame=info.frame_pragmas.get(node.lineno),
            params=[a.arg for a in node.args.args if a.arg not in ("self", "cls")],
            conc_ambient=(
                node.lineno in info.conc_ambient_lines or info.module_conc_ambient
            ),
            exc_boundary=node.lineno in info.exc_boundary_lines,
        )
        aliases = module_aliases()
        walker = _FunctionWalker(info, fn, aliases, class_name)
        for stmt in node.body:
            walker.visit(stmt)
        # Local imports recorded for the import graph too.
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                record_import(stmt, qualname)
        # Flow layer: CFG-derived facts + type-sharpened call edges,
        # computed against the complete module symbol table.  The CFG
        # is built once here and shared with the value analysis so a
        # warm cache run still reports "0 CFG(s) built".
        plain = Resolver(aliases, class_name)
        local_types = local_constructor_types(node, plain)
        sharp = Resolver(aliases, class_name, attr_types, local_types)
        cfg = build_cfg(node)
        flow, typed = compute_flow(
            node, sharp, plain, set(summary.defined_names), cfg=cfg
        )
        fn.typed_calls = typed
        fn.flow = flow if not flow.empty() else None
        # Value layer: interval/shape facts and definite bound hazards.
        values = analyze_function(node, sharp, cfg=cfg)
        fn.values = values if not values.empty() else None
        # Contract sites: ``check_*`` names that resolve through the
        # import aliases into repro.analysis.contracts — both ``@checked``
        # decorator lambdas and inline guarded calls.  Bare in-module
        # names are excluded, so contracts.py itself contributes none.
        sites: List[Tuple[str, int]] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id.startswith("check_"):
                dotted = aliases.get(sub.id)
                if dotted and dotted.rsplit(".", 1)[0].endswith(
                    "analysis.contracts"
                ):
                    sites.append((sub.id, sub.lineno))
        fn.contracts = sorted(set(sites))
        first_line = min(
            [node.lineno] + [d.lineno for d in node.decorator_list]
        )
        fn.proof_assumed = any(
            ln in info.proof_assumed_lines
            for ln in range(first_line, node.lineno + 1)
        )
        summary.functions[qualname] = fn

    def walk_body(
        body: Sequence[ast.stmt],
        class_name: Optional[str] = None,
        attr_types: Optional[Dict[str, str]] = None,
    ) -> None:
        nonlocal only_imports, saw_docstring
        for node in body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                record_import(node, "module")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                only_imports = False
                qual = f"{class_name}.{node.name}" if class_name else node.name
                if class_name is None:
                    summary.defined_names.add(node.name)
                    if node.name == "__getattr__":
                        summary.has_getattr = True
                pending.append((node, qual, class_name, attr_types or {}))
            elif isinstance(node, ast.ClassDef) and class_name is None:
                only_imports = False
                summary.defined_names.add(node.name)
                summary.classes[node.name] = [
                    n.name
                    for n in node.body
                    if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                ]
                walk_body(
                    node.body,
                    class_name=node.name,
                    attr_types=_class_attr_types(node, Resolver(module_aliases())),
                )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)) and class_name is None:
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                names = [t.id for t in targets if isinstance(t, ast.Name)]
                summary.defined_names.update(names)
                value = node.value
                if "__all__" in names and value is not None:
                    summary.all_names = _literal_strings(value)
                elif names != ["__all__"]:
                    only_imports = False
                if "EVENT_NAMES" in names and value is not None:
                    literals = _literal_strings(value)
                    if literals is not None:
                        summary.event_registry = (literals, node.lineno)
                if "METRIC_NAMES" in names and value is not None:
                    keys = _literal_dict_keys(value)
                    if keys is not None:
                        summary.metric_registry = (keys, node.lineno)
            elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
                if isinstance(node.value.value, str) and not saw_docstring:
                    saw_docstring = True
                else:
                    only_imports = False
            elif isinstance(node, (ast.If, ast.Try)):
                branches: List[Sequence[ast.stmt]] = [getattr(node, "body", [])]
                branches.append(getattr(node, "orelse", []))
                branches.append(getattr(node, "finalbody", []))
                for handler in getattr(node, "handlers", []):
                    branches.append(handler.body)
                for branch in branches:
                    walk_body(branch, class_name=class_name)
            elif class_name is None:
                only_imports = False

    walk_body(info.tree.body)
    summary.reexport_only = only_imports and bool(summary.imports)

    # Phase two: function bodies, now that defined_names is complete.
    for node, qual, cls, attr_types in pending:
        walk_function(node, qual, cls, attr_types)
    summary.module_conc_events = module_conc_events(
        info.tree, Resolver(module_aliases())
    )

    # tracer.event("name", …) and registry.counter/gauge/histogram("name", …)
    # literal emissions anywhere in the file.
    for node in ast.walk(info.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            if node.func.attr == "event":
                summary.events.append((node.args[0].value, node.lineno))
            elif node.func.attr in ("counter", "gauge", "histogram"):
                summary.metrics.append((node.args[0].value, node.lineno))
    return summary


# ----------------------------------------------------------------------
# The index
# ----------------------------------------------------------------------


class ProjectIndex:
    """Summaries plus the resolution machinery the passes share."""

    def __init__(self, summaries: Sequence[ModuleSummary]):
        #: display path -> summary (every parsed file, tests included).
        self.files: Dict[str, ModuleSummary] = {
            s.display_path: s for s in summaries
        }
        #: dotted module name -> summary (files under a repro package).
        self.modules: Dict[str, ModuleSummary] = {
            s.module: s for s in summaries if s.module
        }

    # -- functions ------------------------------------------------------

    def functions(self) -> Iterator[Tuple[str, ModuleSummary, FunctionSummary]]:
        """Yield ``(key, module summary, function summary)`` for every
        indexed function; keys are ``module::qualname``."""
        for name in sorted(self.modules):
            summary = self.modules[name]
            for qual in sorted(summary.functions):
                yield f"{name}::{qual}", summary, summary.functions[qual]

    def function(self, key: str) -> Optional[FunctionSummary]:
        module, _, qual = key.partition("::")
        summary = self.modules.get(module)
        if summary is None:
            return None
        return summary.functions.get(qual)

    # -- call resolution ------------------------------------------------

    def resolve_call(self, module: str, raw: str) -> Optional[str]:
        """Resolve a recorded call name to a function key, or ``None``.

        ``raw`` is either a bare/in-class name (same module) or an
        alias-expanded dotted path.  Re-export chains (``from X import
        Y`` in package ``__init__``s) are followed up to five hops.
        """
        summary = self.modules.get(module)
        if summary is not None:
            resolved = self._resolve_in_module(module, raw, 0)
            if resolved:
                return resolved
        parts = raw.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return self._resolve_in_module(prefix, ".".join(parts[cut:]), 0)
        return None

    def _resolve_in_module(self, module: str, name: str, depth: int) -> Optional[str]:
        if depth > 5 or not name:
            return None
        summary = self.modules.get(module)
        if summary is None:
            return None
        if name in summary.functions:
            return f"{module}::{name}"
        head, _, rest = name.partition(".")
        if head in summary.classes:
            if not rest:  # instantiation -> __init__ when defined
                init = f"{head}.__init__"
                return f"{module}::{init}" if init in summary.functions else None
            return None
        # Submodule of a package: repro.core -> repro.core.segment.
        child = f"{module}.{head}"
        if child in self.modules:
            return self._resolve_in_module(child, rest, depth + 1)
        # Re-export: from X import head (as …) at module scope.
        for record in summary.imports:
            if record.scope != "module" or record.names is None:
                continue
            if head in record.names:
                target = f"{record.module}.{head}"
                if target in self.modules and rest:
                    return self._resolve_in_module(target, rest, depth + 1)
                return self._resolve_in_module(
                    record.module, name, depth + 1
                )
        return None

    def call_graph(self) -> Dict[str, List[str]]:
        """``function key -> sorted callee keys`` over the whole index."""
        graph: Dict[str, List[str]] = {}
        for key, summary, fn in self.functions():
            module = summary.module or ""
            targets: Set[str] = set()
            for raw, _line in fn.calls:
                resolved = self.resolve_call(module, raw)
                if resolved and resolved != key:
                    targets.add(resolved)
            graph[key] = sorted(targets)
        return graph

    # -- import liveness ------------------------------------------------

    def importers_of(self, module: str) -> List[Tuple[str, int]]:
        """``(display path, line)`` of every import of ``module`` or of
        a name from it, anywhere in the project (any scope)."""
        hits: List[Tuple[str, int]] = []
        parent, _, leaf = module.rpartition(".")
        for path in sorted(self.files):
            summary = self.files[path]
            if summary.module == module:
                continue
            for record in summary.imports:
                if record.module == module or record.module.startswith(module + "."):
                    hits.append((path, record.line))
                elif (
                    parent
                    and record.module == parent
                    and record.names is not None
                    and leaf in record.names
                ):
                    hits.append((path, record.line))
        return hits

    def resolves_name(self, module: str, name: str) -> bool:
        """Whether ``from module import name`` would succeed, judged
        statically (definitions, re-exports, submodules, ``__getattr__``
        and star imports all count)."""
        summary = self.modules.get(module)
        if summary is None:
            return True  # outside the index: not ours to judge
        if summary.has_getattr or name in summary.defined_names:
            return True
        if f"{module}.{name}" in self.modules:
            return True
        for record in summary.imports:
            if record.scope != "module" or record.names is None:
                continue
            if "*" in record.names:
                return True
        return False

    # -- graph dumps ----------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        modules = {}
        for name in sorted(self.modules):
            summary = self.modules[name]
            modules[name] = {
                "path": summary.display_path,
                "functions": sorted(summary.functions),
                "imports": sorted(
                    {r.module for r in summary.imports if r.scope == "module"}
                ),
                "lazy_imports": sorted(
                    {r.module for r in summary.imports if r.scope != "module"}
                ),
            }
        return {"modules": modules, "calls": self.call_graph()}

    def to_dot(self) -> str:
        lines = ["digraph repro_index {", "  rankdir=LR;"]
        for name in sorted(self.modules):
            summary = self.modules[name]
            for dep in sorted({r.module for r in summary.imports if r.scope == "module"}):
                if dep in self.modules:
                    lines.append(f'  "{name}" -> "{dep}";')
            for dep in sorted({r.module for r in summary.imports if r.scope != "module"}):
                if dep in self.modules:
                    lines.append(f'  "{name}" -> "{dep}" [style=dashed];')
        lines.append("}")
        return "\n".join(lines)
