"""Project-specific static analysis and runtime contracts.

Two halves, one goal — keeping the reproduction *trustworthy*:

* :mod:`repro.analysis.lint` — an AST linter whose rules encode this
  repo's determinism, layering and coordinate-frame invariants (run it
  with ``python -m repro check`` or ``make lint``);
* :mod:`repro.analysis.contracts` — optional runtime invariant checks
  on the pipeline's geometric claims (cuts lie in whitespace, layout
  trees nest, Pareto fronts are non-dominated), enabled with
  ``REPRO_CONTRACTS=1`` and free when off.

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and how to add
a rule.
"""

from repro.analysis.lint import Violation, lint_paths
from repro.analysis.contracts import ContractViolation, contracts_enabled

__all__ = ["Violation", "lint_paths", "ContractViolation", "contracts_enabled"]
