"""The rule catalogue: determinism, layering, frame hygiene, hazards.

Every rule encodes an invariant this reproduction depends on — see
``docs/STATIC_ANALYSIS.md`` for the prose version of each.  Layer
rules deliberately look at *module-scope* imports only: a function-
local import is the sanctioned escape hatch for call-time dependencies
(e.g. ``run_corpus`` lazily importing the parallel runner), because
the invariant being protected is the import graph at module load, not
the call graph.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.engine import ALL_RULES, ModuleInfo, Rule, Violation, register

# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

#: Layers whose outputs must be bit-identical run to run (the
#: determinism regression test depends on it).
DETERMINISTIC_LAYERS = ("repro.core", "repro.geometry", "repro.mining", "repro.nlp")


def _in_layer(module: Optional[str], prefixes: Sequence[str]) -> bool:
    if module is None:
        return False
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def _is_type_checking(test: ast.AST) -> bool:
    """``if TYPE_CHECKING:`` (optionally ``typing.TYPE_CHECKING``)."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _module_scope_imports(
    module: ModuleInfo,
) -> Iterator[Tuple[ast.stmt, str, Optional[List[str]]]]:
    """Yield ``(node, imported_module, from_names)`` for every import
    executed at module load — including inside module-level ``if``/
    ``try`` — but excluding ``if TYPE_CHECKING:`` blocks, which never
    execute, and function bodies, which are the lazy-import escape
    hatch."""

    def walk(body: Sequence[ast.stmt]) -> Iterator[Tuple[ast.stmt, str, Optional[List[str]]]]:
        for node in body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield node, alias.name, None
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    yield node, node.module, [a.name for a in node.names]
            elif isinstance(node, ast.If):
                if not _is_type_checking(node.test):
                    yield from walk(node.body)
                yield from walk(node.orelse)
            elif isinstance(node, ast.Try):
                yield from walk(node.body)
                yield from walk(node.orelse)
                yield from walk(node.finalbody)
                for handler in node.handlers:
                    yield from walk(handler.body)

    yield from walk(module.tree.body)


def _imports_package(imported: str, package: str) -> bool:
    return imported == package or imported.startswith(package + ".")


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------

#: numpy.random attributes that are *seeded-generator* constructors,
#: not draws from the hidden legacy global state.
_NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox", "SFC64", "MT19937"}
#: random-module attributes that construct an instance rather than
#: drawing from the hidden module-level RNG.
_STDLIB_RANDOM_OK = {"Random", "SystemRandom"}


@register
class GlobalRngRule(Rule):
    """DET001 — draws from hidden global RNG state.

    ``random.random()`` / ``np.random.rand()`` pull from interpreter-
    global state seeded from the OS, so two runs (or two import orders)
    disagree.  Every stochastic component here threads an explicit
    ``np.random.default_rng(seed)`` instead.  Zero-argument
    ``default_rng()`` / ``random.Random()`` are flagged too: they seed
    from OS entropy.
    """

    rule_id = "DET001"
    summary = "no draws from global/unseeded RNG state"

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call_name(node.func)
            if name is None:
                continue
            unseeded = not node.args and not node.keywords
            if name.startswith("random.") and name.count(".") == 1:
                attr = name.split(".", 1)[1]
                if attr not in _STDLIB_RANDOM_OK:
                    yield module.violation(
                        node, self.rule_id,
                        f"call to random.{attr}() draws from the global RNG; "
                        "thread a seeded np.random.default_rng(seed) (or random.Random(seed)) instead",
                    )
                elif attr == "Random" and unseeded:
                    yield module.violation(
                        node, self.rule_id,
                        "random.Random() with no seed draws its state from OS entropy; pass an explicit seed",
                    )
            elif name.startswith("numpy.random."):
                attr = name.rsplit(".", 1)[1]
                if attr not in _NP_RANDOM_OK:
                    yield module.violation(
                        node, self.rule_id,
                        f"call to np.random.{attr}() uses numpy's legacy global RNG; "
                        "use a seeded np.random.default_rng(seed) generator instead",
                    )
                elif attr == "default_rng" and unseeded:
                    yield module.violation(
                        node, self.rule_id,
                        "default_rng() with no seed draws its state from OS entropy; pass an explicit seed",
                    )


#: Wall-clock / entropy calls that make a "deterministic" layer's
#: output depend on when or where it ran.  ``time.perf_counter`` /
#: ``time.monotonic`` / ``time.process_time`` stay legal — timing how
#: long work took does not change what the work produced.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}


@register
class WallClockRule(Rule):
    """DET002 — wall clock / OS entropy inside deterministic layers.

    ``repro.core`` / ``repro.geometry`` / ``repro.mining`` /
    ``repro.nlp`` promise byte-identical output given identical inputs
    (the serial-vs-parallel determinism test enforces this end to end).
    """

    rule_id = "DET002"
    summary = "no wall clock or OS entropy in deterministic layers"

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        if not _in_layer(module.module, DETERMINISTIC_LAYERS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call_name(node.func)
            if name is None:
                continue
            if name in _WALL_CLOCK or name.startswith("secrets."):
                yield module.violation(
                    node, self.rule_id,
                    f"{name}() makes this deterministic layer's output depend on run time/entropy; "
                    "pass the value in from the caller (perf_counter/monotonic are fine for timing)",
                )


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


@register
class SetIterationRule(Rule):
    """DET003 — iterating a set where order can reach the output.

    Set iteration order varies with insertion history and hash
    randomisation, so any sequence built from it is nondeterministic.
    ``sorted(set(...))`` is the fix (and is not flagged); building
    another set from a set is harmless and also not flagged.
    """

    rule_id = "DET003"
    summary = "no ordered iteration over bare sets"

    _MESSAGE = (
        "iteration order over a set is nondeterministic; "
        "iterate sorted(...) when order can reach any output"
    )

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expression(node.iter):
                yield module.violation(node.iter, self.rule_id, self._MESSAGE)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if _is_set_expression(gen.iter):
                        yield module.violation(gen.iter, self.rule_id, self._MESSAGE)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in {"list", "tuple", "enumerate"} and node.args:
                    if _is_set_expression(node.args[0]):
                        yield module.violation(node.args[0], self.rule_id, self._MESSAGE)


# ----------------------------------------------------------------------
# Layering
# ----------------------------------------------------------------------


@register
class CoreLayerRule(Rule):
    """LAYER001 — ``repro.core`` imports only downward.

    The pipeline must be loadable (and testable) without the
    experiment harness, the perf tooling or the corpus generators;
    shared pieces live below core (``repro.instrument``,
    ``repro.ocr.cache``, ``repro.datasets``).  Function-local lazy
    imports remain legal for call-time dispatch.
    """

    rule_id = "LAYER001"
    summary = "repro.core must not import perf/harness/synth/baselines"

    _FORBIDDEN = ("repro.perf", "repro.harness", "repro.synth", "repro.baselines")

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        if not _in_layer(module.module, ["repro.core"]):
            return
        for node, imported, _names in _module_scope_imports(module):
            for forbidden in self._FORBIDDEN:
                if _imports_package(imported, forbidden):
                    yield module.violation(
                        node, self.rule_id,
                        f"repro.core must not import {forbidden} at module scope; "
                        "move the shared piece below core or import lazily inside the function that needs it",
                    )
                    break


@register
class GeometryLayerRule(Rule):
    """LAYER002 — ``repro.geometry`` is the base of the tower.

    Geometry imports nothing from ``repro`` but itself, so every other
    layer can depend on it without cycles.
    """

    rule_id = "LAYER002"
    summary = "repro.geometry imports nothing from repro but itself"

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        if not _in_layer(module.module, ["repro.geometry"]):
            return
        for node, imported, _names in _module_scope_imports(module):
            if _imports_package(imported, "repro") and not _imports_package(
                imported, "repro.geometry"
            ):
                yield module.violation(
                    node, self.rule_id,
                    f"repro.geometry is the base layer and must not import {imported}",
                )


@register
class BaselineLayerRule(Rule):
    """LAYER003 — baselines never import the VS2 machinery.

    Comparing against a baseline that secretly calls the system under
    test proves nothing, so baselines may share only the task surface
    (result types, pattern mining, the holdout corpus) — never the
    segmentation/selection algorithms.
    """

    rule_id = "LAYER003"
    summary = "baselines must not import VS2 algorithm internals"

    #: The shared task surface: result/record types, mined patterns,
    #: the holdout container, descriptor-span lookup, configuration.
    _ALLOWED_CORE = {"select", "patterns", "holdout", "formfields", "records", "config"}
    #: VS2 entry points re-exported by the ``repro.core`` package.
    _FORBIDDEN_NAMES = {"VS2Segmenter", "VS2Selector", "VS2Pipeline"}

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        if not _in_layer(module.module, ["repro.baselines"]):
            return
        for node, imported, names in _module_scope_imports(module):
            if imported == "repro.core" and names:
                for name in sorted(self._FORBIDDEN_NAMES.intersection(names)):
                    yield module.violation(
                        node, self.rule_id,
                        f"baselines must not use {name}: a baseline that calls the "
                        "system under test proves nothing",
                    )
            elif imported.startswith("repro.core."):
                sub = imported.split(".")[2]
                if sub not in self._ALLOWED_CORE:
                    yield module.violation(
                        node, self.rule_id,
                        f"baselines may share only the task surface of repro.core "
                        f"({', '.join(sorted(self._ALLOWED_CORE))}), not {imported}",
                    )


# ----------------------------------------------------------------------
# Coordinate-frame hygiene
# ----------------------------------------------------------------------


def _attribute_bases(node: ast.AST, attr: str) -> Set[str]:
    """Dumps of the base expressions of every ``<base>.<attr>`` access
    in the subtree — equality of dumps means "same expression"."""
    bases: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == attr:
            bases.add(ast.dump(sub.value))
    return bases


@register
class BboxArithmeticRule(Rule):
    """FRAME001 — raw ``.x + .w`` / ``.y + .h`` arithmetic outside geometry.

    Hand-rolled edge/midpoint arithmetic is where observed-frame and
    original-frame coordinates get silently mixed (the deskew bugs of
    ``docs/ARCHITECTURE.md``).  ``BBox`` already exposes the derived
    quantities — ``.x2``/``.y2``, ``.centroid``, ``.expand``,
    ``.translate``, ``.hsplit`` — and new ones belong next to them in
    ``repro.geometry``.
    """

    rule_id = "FRAME001"
    summary = "no raw x+w / y+h bbox arithmetic outside repro.geometry"

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        if _in_layer(module.module, ["repro.geometry"]):
            return
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add)):
                continue
            for low, extent in (("x", "w"), ("y", "h")):
                same_base = (
                    _attribute_bases(node.left, low) & _attribute_bases(node.right, extent)
                ) or (
                    _attribute_bases(node.left, extent) & _attribute_bases(node.right, low)
                )
                if same_base:
                    yield module.violation(
                        node, self.rule_id,
                        f"raw .{low} + .{extent} arithmetic re-derives bbox geometry in place; "
                        "use the BBox helpers (.x2/.y2, .centroid, .expand, .hsplit) or add one in repro.geometry",
                    )
                    break


@register
class BboxConstructionRule(Rule):
    """FRAME002 — ``BBox`` is rebuilt from sequences only via factories.

    ``BBox(*values)`` hard-codes the ``(x, y, w, h)`` field order at
    every call site; ``BBox.from_tuple`` / ``BBox.from_corners`` keep
    the serialised layout in one place.
    """

    rule_id = "FRAME002"
    summary = "construct BBox from sequences via from_tuple/from_corners"

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        if _in_layer(module.module, ["repro.geometry"]):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call_name(node.func)
            if name is None or not (name == "BBox" or name.endswith(".BBox")):
                continue
            if any(isinstance(a, ast.Starred) for a in node.args):
                yield module.violation(
                    node, self.rule_id,
                    "BBox(*seq) hard-codes the field order; use BBox.from_tuple(seq)",
                )
            elif len(node.args) == 4 and all(
                isinstance(a, ast.Subscript) for a in node.args
            ):
                bases = {ast.dump(a.value) for a in node.args}
                if len(bases) == 1:
                    yield module.violation(
                        node, self.rule_id,
                        "element-wise BBox(seq[0], seq[1], ...) re-derives the field order; "
                        "use BBox.from_tuple(seq)",
                    )


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------

#: Monotonic-clock reads that constitute hand-rolled timing.  DET002
#: deliberately allows these in deterministic layers (timing does not
#: change outputs); OBS001 narrows further *inside the pipeline*:
#: ``repro.core`` must report time through ``PipelineMetrics.stage`` /
#: ``Tracer.span`` so every measurement lands in the shared tables,
#: histograms and traces instead of a print statement.
_AD_HOC_TIMING = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
}


@register
class AdHocTimingRule(Rule):
    """OBS001 — hand-rolled timing inside ``repro.core``.

    A bare ``time.perf_counter()`` pair measures one site and reports
    nowhere: the measurement is invisible to ``--profile`` tables,
    latency histograms, BENCH snapshots and traces, and drifts from
    the stage vocabulary.  Core code must time through the shared
    instrumentation (``metrics.stage(...)`` context managers or
    ``tracer.span(...)``), which records into all of them at once.
    """

    rule_id = "OBS001"
    summary = "repro.core must time via metrics/tracer, not perf_counter"

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        if not _in_layer(module.module, ["repro.core"]):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call_name(node.func)
            if name in _AD_HOC_TIMING:
                yield module.violation(
                    node, self.rule_id,
                    f"{name}() is ad-hoc timing invisible to the shared instrumentation; "
                    "wrap the work in metrics.stage(...) or tracer.span(...) instead",
                )


# ----------------------------------------------------------------------
# General hazards
# ----------------------------------------------------------------------


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"list", "dict", "set", "bytearray", "defaultdict", "Counter"}
    )


@register
class MutableDefaultRule(Rule):
    """MUT001 — mutable default arguments.

    A mutable default is evaluated once and shared across calls —
    state leaks between documents and between test cases.  Default to
    ``None`` and materialise inside the function.
    """

    rule_id = "MUT001"
    summary = "no mutable default arguments"

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    yield module.violation(
                        default, self.rule_id,
                        "mutable default argument is shared across calls; default to None "
                        "and build the value inside the function",
                    )


@register
class BareNoqaRule(Rule):
    """SUPP001 — bare (unscoped) noqa suppressions.

    A noqa with no rule list silences every current *and future* rule
    on its line, so a genuine new finding there would never surface.
    Name the rules being waived — ``noqa: DET001,FRAME101`` or the
    historical ``repro: noqa[DET001]`` — so each suppression stays an
    auditable, single-purpose decision.  A bare noqa still blanket-
    suppresses (changing that silently would un-suppress legacy lines)
    but is reported by this rule until it is scoped.
    """

    rule_id = "SUPP001"
    summary = "no bare noqa; list the rule IDs being suppressed"

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        for line in sorted(module.noqa):
            if module.noqa[line].blanket:
                yield Violation(
                    path=module.display_path,
                    line=line,
                    col=1,
                    rule=self.rule_id,
                    message=(
                        "bare noqa suppresses every current and future rule on this line; "
                        "list the rule IDs instead (e.g. noqa: DET001,FRAME101)"
                    ),
                )


@register
class SwallowedExceptionRule(Rule):
    """EXC001 — ``except Exception: pass`` hides failures.

    A blanket handler whose whole body is ``pass`` turns broken
    invariants into silently wrong numbers — the worst failure mode a
    reproduction can have.  Narrow the exception or handle it visibly.
    """

    rule_id = "EXC001"
    summary = "no silently swallowed blanket exceptions"

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if len(node.body) != 1 or not isinstance(node.body[0], ast.Pass):
                continue
            if node.type is None:
                broad = True
            elif isinstance(node.type, ast.Name):
                broad = node.type.id in {"Exception", "BaseException"}
            elif isinstance(node.type, ast.Tuple):
                broad = any(
                    isinstance(e, ast.Name) and e.id in {"Exception", "BaseException"}
                    for e in node.type.elts
                )
            else:
                broad = False
            if broad:
                yield module.violation(
                    node, self.rule_id,
                    "blanket except with a bare pass swallows real failures; "
                    "narrow the exception type or record the failure",
                )


# ----------------------------------------------------------------------
# Resilience
# ----------------------------------------------------------------------

#: Layers whose waiting must go through the injectable budget clock
#: (:mod:`repro.resilience.budget`) so retry schedules stay virtual and
#: deterministic.
_BUDGETED_LAYERS = ("repro.core", "repro.resilience")
#: The one sanctioned home of a real ``time.sleep``.
_BUDGET_MODULE = "repro.resilience.budget"
#: Layers whose broad ``except`` handlers must convert failures into
#: recorded outcomes rather than swallowing them.
_ISOLATED_LAYERS = ("repro.core", "repro.resilience", "repro.perf")

_SLEEP_CALLS = {"time.sleep", "asyncio.sleep"}


@register
class BareSleepRule(Rule):
    """RES001 — wall-clock sleeping inside the pipeline/resilience layers.

    A bare ``time.sleep`` makes retry backoff depend on the wall clock:
    tests slow to real time, the chaos suite stops being instant, and
    the waited amount never reaches the supervision report.  Waiting in
    ``repro.core`` / ``repro.resilience`` must be *virtual* — charge
    seconds to a :class:`repro.resilience.budget.BackoffClock` (whose
    optional injected sleeper is the escape hatch for callers that
    genuinely want pacing).  ``repro.resilience.budget`` itself is the
    one sanctioned home of a real sleep (``block_forever``, which
    exists so injected hangs really hang inside supervised workers).
    """

    rule_id = "RES001"
    summary = "no bare time.sleep in core/resilience; charge a BackoffClock"

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        if not _in_layer(module.module, _BUDGETED_LAYERS):
            return
        if module.module == _BUDGET_MODULE:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve_call_name(node.func)
            if name in _SLEEP_CALLS:
                yield module.violation(
                    node, self.rule_id,
                    f"{name}() blocks on the wall clock; charge the wait to an "
                    "injectable repro.resilience.budget.BackoffClock instead",
                )


def _broad_handler(node: ast.ExceptHandler) -> bool:
    """Bare ``except:``, ``except Exception``/``BaseException``, or a
    tuple containing either."""
    if node.type is None:
        return True
    if isinstance(node.type, ast.Name):
        return node.type.id in {"Exception", "BaseException"}
    if isinstance(node.type, ast.Tuple):
        return any(
            isinstance(e, ast.Name) and e.id in {"Exception", "BaseException"}
            for e in node.type.elts
        )
    return False


def _handler_outcomes(node: ast.ExceptHandler) -> Tuple[bool, bool]:
    """Whether the handler body re-raises and/or constructs a
    ``DocumentFailure`` anywhere."""
    raises = False
    records = False
    for stmt in node.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Raise):
                raises = True
            elif isinstance(sub, ast.Call):
                func = sub.func
                name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else None
                )
                if name == "DocumentFailure":
                    records = True
    return raises, records


@register
class IsolationSiteRule(Rule):
    """RES002 — broad ``except`` only at registered isolation sites.

    Error isolation is a *feature* with exactly two legitimate shapes:
    convert the failure into a recorded outcome (a ``DocumentFailure``,
    a degradation) or re-raise it.  A broad handler that does neither
    silently swallows faults the supervised runner is supposed to
    retry, quarantine and explain.  Functions whose whole job is
    conversion are registered in
    :data:`repro.resilience.faults.ISOLATION_SITES`; everywhere else in
    the pipeline/perf/resilience layers a broad handler must re-raise
    (conditionally is fine) or construct a ``DocumentFailure``.
    """

    rule_id = "RES002"
    summary = "broad except must re-raise, record a DocumentFailure, or be a registered isolation site"

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        if not _in_layer(module.module, _ISOLATED_LAYERS):
            return
        from repro.resilience.faults import ISOLATION_SITES

        def visit(node: ast.AST, stack: Tuple[str, ...]) -> Iterator[Violation]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                stack = stack + (node.name,)
            if isinstance(node, ast.ExceptHandler) and _broad_handler(node):
                qualname = ".".join((module.module or "", *stack)).strip(".")
                if qualname not in ISOLATION_SITES:
                    raises, records = _handler_outcomes(node)
                    if not raises and not records:
                        yield module.violation(
                            node, self.rule_id,
                            "broad except outside a registered isolation site must "
                            "re-raise or construct a DocumentFailure; register the "
                            "function in repro.resilience.faults.ISOLATION_SITES if "
                            "conversion is its whole job",
                        )
            for child in ast.iter_child_nodes(node):
                yield from visit(child, stack)

        yield from visit(module.tree, ())


# ----------------------------------------------------------------------
# Explain metadata
# ----------------------------------------------------------------------

#: rule_id -> (example violation, fix).  Attached to the registered
#: instances below so ``repro check --explain RULE`` renders docstring,
#: example and fix from one source of truth (no drift with the docs).
_RULE_EXAMPLES: Dict[str, Tuple[str, str]] = {
    "DET001": (
        "import random\njitter = random.random()",
        "rng = np.random.default_rng(seed)\njitter = rng.random()",
    ),
    "DET002": (
        "# in repro/core/…\nstamp = time.time()",
        "pass the timestamp in from the caller; use time.perf_counter()\n"
        "only for timing (it never reaches the output)",
    ),
    "DET003": (
        "for name in {'a', 'b', 'c'}:\n    emit(name)",
        "for name in sorted({'a', 'b', 'c'}):\n    emit(name)",
    ),
    "LAYER001": (
        "# in repro/core/…\nfrom repro.harness import ExperimentContext",
        "move the shared piece below core (repro.instrument, repro.datasets, …)\n"
        "or import lazily inside the function that needs it",
    ),
    "LAYER002": (
        "# in repro/geometry/…\nfrom repro.doc import Document",
        "geometry is the base layer: accept plain floats/boxes instead of\n"
        "importing upward",
    ),
    "LAYER003": (
        "# in repro/baselines/…\nfrom repro.core.segment import VS2Segmenter",
        "share only the task surface (repro.core.select result types,\n"
        "patterns, holdout, formfields, records, config)",
    ),
    "FRAME001": (
        "right_edge = block.x + block.w",
        "right_edge = block.x2   # or .centroid/.expand/.hsplit",
    ),
    "FRAME002": (
        "box = BBox(*row)",
        "box = BBox.from_tuple(row)",
    ),
    "OBS001": (
        "# in repro/core/…\nt0 = time.perf_counter()\nwork()\ndt = time.perf_counter() - t0",
        "with metrics.stage('segment'):\n    work()",
    ),
    "MUT001": (
        "def collect(out=[]):\n    out.append(1)",
        "def collect(out=None):\n    out = [] if out is None else out",
    ),
    "EXC001": (
        "try:\n    risky()\nexcept Exception:\n    pass",
        "except ValueError:\n    handle_or_record()",
    ),
    "SUPP001": (
        "value = random.random()  # repro: " + "noqa",
        "value = random.random()  # repro: noqa[DET001]",
    ),
    "RES001": (
        "# in repro/core/…\ntime.sleep(2 ** attempt)",
        "clock.charge(backoff_seconds(attempt, base_s, cap_s))\n"
        "# a BackoffClock accounts the wait; inject a sleeper to pace for real",
    ),
    "RES002": (
        "# in repro/core/…\ntry:\n    run(doc)\nexcept Exception:\n    return None",
        "except Exception as exc:\n    if isinstance(exc, TransientFault):\n"
        "        raise\n    failures.append(DocumentFailure(...))",
    ),
}

for _rule_id, (_example, _fix) in _RULE_EXAMPLES.items():
    ALL_RULES[_rule_id].example = _example
    ALL_RULES[_rule_id].fix = _fix
