"""The ``repro check`` lint engine.

:mod:`repro.analysis.lint.engine` owns the machinery (file discovery,
AST parsing, ``noqa``-comment suppression, baselines, output formats);
:mod:`repro.analysis.lint.rules` owns the rule catalogue.  Importing
this package registers every rule.
"""

from repro.analysis.lint.engine import (
    ALL_RULES,
    ModuleInfo,
    NoqaMark,
    Violation,
    format_human,
    format_json,
    lint_paths,
    load_baseline,
    rekey_baseline,
    write_baseline,
)
from repro.analysis.lint import rules  # noqa: F401  (registers the catalogue)

__all__ = [
    "ALL_RULES",
    "ModuleInfo",
    "NoqaMark",
    "Violation",
    "format_human",
    "format_json",
    "lint_paths",
    "load_baseline",
    "rekey_baseline",
    "write_baseline",
]
