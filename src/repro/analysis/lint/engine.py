"""Lint engine: per-file model, suppression, baselines, output.

The engine is rule-agnostic.  A *module-scope rule* is an object with a
``rule_id``, a one-line ``summary`` and a ``check(module)`` generator
yielding :class:`Violation`; rules register themselves with
:func:`register` (see :mod:`repro.analysis.lint.rules` for the
catalogue).  *Interprocedural passes* — which see the whole
:class:`repro.analysis.index.ProjectIndex` rather than one file — live
in :mod:`repro.analysis.passes` and reuse the same :class:`Violation`
and suppression machinery.

Suppression is per-line: a trailing ``noqa`` comment in either the
historical form (``repro: noqa[DET001,FRAME101]``) or the conventional
form (``noqa: DET001,FRAME101``) silences the named rule(s) on that
line.  A *bare* noqa (no rule list) still blanket-silences the line
but is itself reported as ``SUPP001`` — unscoped suppressions hide
future findings.  A *baseline* (JSON list of violation fingerprints)
lets a new rule land while legacy hits are burned down — the shipped
baseline is empty and should stay that way.

Beyond noqa, two pragma vocabularies feed the interprocedural passes:

* ``det: reviewed`` (trailing, on a ``def`` line) — the function was
  audited and its impure-looking sinks do not reach the output; the
  determinism pass stops propagating through it.
* ``frame: <f>`` / ``frame: <f> -> <g>`` (trailing on a ``def`` line,
  or a full-line comment for a whole module) — declares the coordinate
  frame of the bbox values a function consumes/produces (``->`` for
  converters); ``frame: any`` marks frame-polymorphic code.
* ``conc: ambient`` (trailing on a ``def`` line, or a full-line
  comment for a whole module) — the module-level state this code
  writes is sanctioned ambient state (e.g. the fault-plan installer);
  the concurrency pass does not blame writes here.
* ``exc: boundary`` (trailing on a ``def`` line) — the function is a
  reviewed fault boundary: typed faults may escape it even though it
  is not in the ``ISOLATION_SITES`` registry (e.g. test harnesses
  driving the pipeline directly).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Both noqa spellings: historical ``repro: noqa[DET001]`` and
#: conventional ``noqa: DET001,FRAME101``; a match with neither a
#: bracketed nor a colon list is *bare* (blanket + SUPP001).
_NOQA_RE = re.compile(
    r"#\s*(?:repro:\s*)?noqa(?:\s*\[(?P<bracket>[A-Za-z0-9_,\s]+)\]|:\s*(?P<colon>[A-Za-z0-9_,\s]+))?"
)

#: Trailing ``det: reviewed`` pragma on a ``def`` line.
_DET_REVIEWED_RE = re.compile(r"#\s*det:\s*reviewed\b")

#: Trailing ``frame: observed`` or converter ``frame: observed -> original``.
_FRAME_PRAGMA_RE = re.compile(
    r"#\s*frame:\s*(?P<src>[A-Za-z_]\w*)(?:\s*->\s*(?P<dst>[A-Za-z_]\w*))?"
)

#: ``conc: ambient`` — sanctioned module-state writes (trailing on a
#: ``def`` line for one function, full-line comment for the module).
_CONC_AMBIENT_RE = re.compile(r"#\s*conc:\s*ambient\b")

#: Trailing ``exc: boundary`` — reviewed fault boundary on a ``def``.
_EXC_BOUNDARY_RE = re.compile(r"#\s*exc:\s*boundary\b")

#: Trailing ``proof: assumed`` — a contract site whose unproven
#: obligations were reviewed by hand (the proof ledger records ASSUMED).
_PROOF_ASSUMED_RE = re.compile(r"#\s*proof:\s*assumed\b")

#: Directory names pruned from discovery.  ``fixtures`` holds test
#: inputs with *intentional* violations (tests copy them to a tmp dir
#: before linting them on purpose).
_SKIP_DIRS = {
    ".git", "__pycache__", ".hypothesis", ".pytest_cache", "build", "dist",
    "fixtures",
}


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule hit at a location, with a fixit message."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        """Line-insensitive identity used by the baseline (survives
        unrelated edits shifting the hit up or down the file)."""
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "Violation":
        return Violation(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            rule=str(data["rule"]),
            message=str(data["message"]),
        )


@dataclass(frozen=True)
class NoqaMark:
    """The suppression state of one line.

    ``blanket`` is a bare noqa (silences every rule except ``SUPP001``,
    which reports the bare noqa itself); ``ids`` are explicitly listed
    rule IDs (which silence exactly those rules, including ``SUPP001``).
    One line can carry both — e.g. a string literal containing a bare
    noqa plus a real trailing ``noqa: SUPP001``.
    """

    blanket: bool = False
    ids: frozenset = frozenset()

    def suppresses(self, rule_id: str) -> bool:
        if rule_id in self.ids:
            return True
        return self.blanket and rule_id != "SUPP001"

    def to_dict(self) -> Dict[str, object]:
        return {"blanket": self.blanket, "ids": sorted(self.ids)}

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "NoqaMark":
        return NoqaMark(bool(data["blanket"]), frozenset(data["ids"]))  # type: ignore[arg-type]


class ModuleInfo:
    """One parsed source file, as rules see it."""

    def __init__(self, path: Path, source: str, display_path: str):
        self.path = path
        #: Path as reported in violations (relative to the lint root).
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        #: Dotted module name (``repro.core.segment``) when the file
        #: lives under a ``repro`` package directory, else ``None`` —
        #: layer-scoped rules key off this.
        self.module = _module_name(path)
        #: line -> suppression state for that line.
        self.noqa: Dict[int, NoqaMark] = _parse_noqa(self.lines)
        #: lines carrying a trailing ``det: reviewed`` pragma.
        self.det_reviewed_lines: Set[int] = {
            i for i, line in enumerate(self.lines, start=1) if _DET_REVIEWED_RE.search(line)
        }
        #: line -> (consumed frame, produced frame) from a trailing
        #: ``frame:`` pragma (both equal unless the ``->`` form is used).
        self.frame_pragmas: Dict[int, Tuple[str, str]] = {}
        #: whole-module frame declared by a full-line ``# frame: X``
        #: comment (``any`` marks frame-polymorphic modules).
        self.module_frame: Optional[str] = None
        for i, line in enumerate(self.lines, start=1):
            m = _FRAME_PRAGMA_RE.search(line)
            if not m:
                continue
            src = m.group("src")
            dst = m.group("dst") or src
            if line.strip().startswith("#"):
                if self.module_frame is None:
                    self.module_frame = src
            else:
                self.frame_pragmas[i] = (src, dst)
        #: lines with a trailing ``conc: ambient`` pragma (functions
        #: whose module-state writes are sanctioned).
        self.conc_ambient_lines: Set[int] = set()
        #: full-line ``# conc: ambient`` — the whole module is
        #: sanctioned ambient state (e.g. the fault-plan installer).
        self.module_conc_ambient: bool = False
        for i, line in enumerate(self.lines, start=1):
            if _CONC_AMBIENT_RE.search(line):
                if line.strip().startswith("#"):
                    self.module_conc_ambient = True
                else:
                    self.conc_ambient_lines.add(i)
        #: lines with a trailing ``exc: boundary`` pragma (reviewed
        #: fault boundaries outside the isolation-site registry).
        self.exc_boundary_lines: Set[int] = {
            i
            for i, line in enumerate(self.lines, start=1)
            if _EXC_BOUNDARY_RE.search(line) and not line.strip().startswith("#")
        }
        #: lines with a trailing ``proof: assumed`` pragma — the proof
        #: layer treats this contract site's UNPROVEN obligations as
        #: reviewed (ASSUMED in the ledger; VIOLATED is never masked).
        self.proof_assumed_lines: Set[int] = {
            i
            for i, line in enumerate(self.lines, start=1)
            if _PROOF_ASSUMED_RE.search(line) and not line.strip().startswith("#")
        }
        #: alias -> fully qualified module/name, e.g. ``np`` ->
        #: ``numpy``, ``default_rng`` -> ``numpy.random.default_rng``.
        self.import_aliases: Dict[str, str] = _collect_aliases(self.tree)

    def resolve_call_name(self, node: ast.AST) -> Optional[str]:
        """Fully qualified dotted name of a ``Name``/``Attribute``
        chain, resolving the root through the import aliases; ``None``
        for anything dynamic (subscripts, calls, locals)."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.import_aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def violation(self, node: ast.AST, rule: str, message: str) -> Violation:
        return Violation(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )

    def suppressed(self, violation: Violation) -> bool:
        marked = self.noqa.get(violation.line)
        return marked is not None and marked.suppresses(violation.rule)


def _module_name(path: Path) -> Optional[str]:
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    sub = parts[parts.index("repro"):]
    if sub[-1] == "__init__.py":
        sub = sub[:-1]
    elif sub[-1].endswith(".py"):
        sub[-1] = sub[-1][:-3]
    return ".".join(sub)


def _parse_noqa(lines: Sequence[str]) -> Dict[int, NoqaMark]:
    out: Dict[int, NoqaMark] = {}
    for i, line in enumerate(lines, start=1):
        blanket = False
        ids: Set[str] = set()
        for m in _NOQA_RE.finditer(line):
            listed = m.group("bracket") or m.group("colon")
            if listed is None:
                blanket = True
            else:
                ids.update(r.strip() for r in listed.split(",") if r.strip())
        if blanket or ids:
            out[i] = NoqaMark(blanket, frozenset(ids))
    return out


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name != "*":
                    aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------

#: rule_id -> rule instance, in registration order.
ALL_RULES: Dict[str, "Rule"] = {}


class Rule:
    """Base class: subclass, set ``rule_id``/``summary``, implement
    ``check``.  ``example`` (a minimal violating snippet) and ``fix``
    (what to write instead) feed ``repro check --explain`` so the
    documentation cannot drift from the catalogue.  Registration is
    explicit via :func:`register` so test fixtures can instantiate
    rules without polluting the registry."""

    rule_id: str = ""
    summary: str = ""
    example: str = ""
    fix: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        raise NotImplementedError


def register(cls):
    """Class decorator adding a rule to :data:`ALL_RULES`."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in ALL_RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    ALL_RULES[cls.rule_id] = cls()
    return cls


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(sub.parts):
                    yield sub


def run_module_rules(
    module: ModuleInfo, active: Sequence[Rule]
) -> List[Violation]:
    """All unsuppressed module-scope rule hits for one parsed file."""
    violations: List[Violation] = []
    for rule in active:
        for v in rule.check(module):
            if not module.suppressed(v):
                violations.append(v)
    return violations


def lint_paths(
    paths: Sequence[Path],
    rule_ids: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> List[Violation]:
    """Lint every ``*.py`` under ``paths`` — module-scope rules *and*
    the interprocedural passes — serially and without a cache.

    Thin wrapper over :func:`repro.analysis.runner.check_project`, kept
    for callers that predate the whole-program framework.  ``rule_ids``
    restricts the run to a subset of the combined catalogue; ``root``
    controls how paths are displayed (defaults to the cwd).
    Unparseable files surface as ``PARSE001`` violations rather than
    crashing the run.  Returns violations sorted by location, with
    noqa suppressions already applied.
    """
    from repro.analysis.runner import check_project

    return check_project(paths, rule_ids=rule_ids, root=root).violations


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------


def load_baseline(path: Path) -> Set[str]:
    """Fingerprints of accepted legacy violations (empty file → empty)."""
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8") or "[]")
    if not isinstance(data, list):
        raise ValueError(f"baseline {path} must be a JSON list of fingerprints")
    return {str(f) for f in data}


def write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    fingerprints = sorted({v.fingerprint() for v in violations})
    path.write_text(json.dumps(fingerprints, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    violations: Sequence[Violation], baseline: Set[str]
) -> List[Violation]:
    return [v for v in violations if v.fingerprint() not in baseline]


def rekey_baseline(path: Path, renames: Dict[str, str]) -> int:
    """Rewrite baseline fingerprints after file or rule renames.

    Fingerprints embed both the rule id and the display path
    (``RULE::path::message``), so a file rename — or a rule being
    superseded, like syntactic ``EXC001`` findings migrating to the
    flow-sensitive ``EXC101`` — would orphan every entry and its
    findings would resurface.  A rename key that looks like a rule id
    (no path separator, matches ``parts[0]``) rewrites the rule
    component; anything else rewrites the path component.  Returns the
    number of fingerprints rewritten.
    """
    fingerprints = load_baseline(path)
    rewritten: Set[str] = set()
    changed = 0
    for fp in fingerprints:
        parts = fp.split("::", 2)
        if len(parts) == 3:
            if parts[0] in renames and "/" not in parts[0]:
                parts[0] = renames[parts[0]]
                changed += 1
            if parts[1] in renames:
                parts[1] = renames[parts[1]]
                changed += 1
        rewritten.add("::".join(parts))
    if changed:
        path.write_text(json.dumps(sorted(rewritten), indent=2) + "\n", encoding="utf-8")
    return changed


# ----------------------------------------------------------------------
# Output
# ----------------------------------------------------------------------


def format_human(violations: Sequence[Violation]) -> str:
    if not violations:
        return "repro check: clean"
    lines = [f"{v.location}: {v.rule} {v.message}" for v in violations]
    lines.append(f"repro check: {len(violations)} violation(s)")
    return "\n".join(lines)


def format_json(violations: Sequence[Violation]) -> str:
    return json.dumps([v.to_dict() for v in violations], indent=2)
