"""Lint engine: discovery, suppression, baselines, output.

The engine is rule-agnostic.  A rule is an object with a ``rule_id``,
a one-line ``summary`` and a ``check(module)`` generator yielding
:class:`Violation`; rules register themselves with :func:`register`
(see :mod:`repro.analysis.lint.rules` for the catalogue).

Suppression is per-line: a trailing ``# repro: noqa[DET001]`` comment
silences the named rule(s) on that line, ``# repro: noqa`` silences
every rule.  A *baseline* (JSON list of violation fingerprints) lets a
new rule land while legacy hits are burned down — the shipped baseline
is empty and should stay that way.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: ``# repro: noqa`` (blanket) or ``# repro: noqa[DET001, LAYER002]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")

_SKIP_DIRS = {".git", "__pycache__", ".hypothesis", ".pytest_cache", "build", "dist"}


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule hit at a location, with a fixit message."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        """Line-insensitive identity used by the baseline (survives
        unrelated edits shifting the hit up or down the file)."""
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class ModuleInfo:
    """One parsed source file, as rules see it."""

    def __init__(self, path: Path, source: str, display_path: str):
        self.path = path
        #: Path as reported in violations (relative to the lint root).
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        #: Dotted module name (``repro.core.segment``) when the file
        #: lives under a ``repro`` package directory, else ``None`` —
        #: layer-scoped rules key off this.
        self.module = _module_name(path)
        #: line -> None (blanket noqa) or the set of silenced rule IDs.
        self.noqa: Dict[int, Optional[Set[str]]] = _parse_noqa(self.lines)
        #: alias -> fully qualified module/name, e.g. ``np`` ->
        #: ``numpy``, ``default_rng`` -> ``numpy.random.default_rng``.
        self.import_aliases: Dict[str, str] = _collect_aliases(self.tree)

    def resolve_call_name(self, node: ast.AST) -> Optional[str]:
        """Fully qualified dotted name of a ``Name``/``Attribute``
        chain, resolving the root through the import aliases; ``None``
        for anything dynamic (subscripts, calls, locals)."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.import_aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def violation(self, node: ast.AST, rule: str, message: str) -> Violation:
        return Violation(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )

    def suppressed(self, violation: Violation) -> bool:
        marked = self.noqa.get(violation.line, _MISSING)
        if marked is _MISSING:
            return False
        return marked is None or violation.rule in marked


_MISSING = object()


def _module_name(path: Path) -> Optional[str]:
    parts = list(path.parts)
    if "repro" not in parts:
        return None
    sub = parts[parts.index("repro"):]
    if sub[-1] == "__init__.py":
        sub = sub[:-1]
    elif sub[-1].endswith(".py"):
        sub[-1] = sub[-1][:-3]
    return ".".join(sub)


def _parse_noqa(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    out: Dict[int, Optional[Set[str]]] = {}
    for i, line in enumerate(lines, start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        if m.group(1) is None:
            out[i] = None
        else:
            out[i] = {r.strip() for r in m.group(1).split(",") if r.strip()}
    return out


def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name != "*":
                    aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------

#: rule_id -> rule instance, in registration order.
ALL_RULES: Dict[str, "Rule"] = {}


class Rule:
    """Base class: subclass, set ``rule_id``/``summary``, implement
    ``check``.  Registration is explicit via :func:`register` so test
    fixtures can instantiate rules without polluting the registry."""

    rule_id: str = ""
    summary: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Violation]:
        raise NotImplementedError


def register(cls):
    """Class decorator adding a rule to :data:`ALL_RULES`."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in ALL_RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    ALL_RULES[cls.rule_id] = cls()
    return cls


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(sub.parts):
                    yield sub


def lint_paths(
    paths: Sequence[Path],
    rule_ids: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> List[Violation]:
    """Lint every ``*.py`` under ``paths`` with the registered rules.

    ``rule_ids`` restricts the run to a subset of the catalogue;
    ``root`` controls how paths are displayed (defaults to the cwd).
    Unparseable files surface as ``PARSE001`` violations rather than
    crashing the run.  Returns violations sorted by location, with
    ``# repro: noqa`` suppressions already applied.
    """
    from repro.analysis.lint import rules  # noqa: F401  (registers catalogue)

    if rule_ids is None:
        active = list(ALL_RULES.values())
    else:
        unknown = set(rule_ids) - set(ALL_RULES)
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        active = [ALL_RULES[r] for r in rule_ids]
    root = root or Path.cwd()

    violations: List[Violation] = []
    for file_path in iter_python_files([Path(p) for p in paths]):
        try:
            display = str(file_path.relative_to(root))
        except ValueError:
            display = str(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
            module = ModuleInfo(file_path, source, display)
        except (SyntaxError, UnicodeDecodeError) as exc:
            line = getattr(exc, "lineno", 1) or 1
            violations.append(
                Violation(display, line, 1, "PARSE001", f"could not parse: {exc.__class__.__name__}: {exc}")
            )
            continue
        for rule in active:
            for v in rule.check(module):
                if not module.suppressed(v):
                    violations.append(v)
    return sorted(violations)


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------


def load_baseline(path: Path) -> Set[str]:
    """Fingerprints of accepted legacy violations (empty file → empty)."""
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8") or "[]")
    if not isinstance(data, list):
        raise ValueError(f"baseline {path} must be a JSON list of fingerprints")
    return {str(f) for f in data}


def write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    fingerprints = sorted({v.fingerprint() for v in violations})
    path.write_text(json.dumps(fingerprints, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    violations: Sequence[Violation], baseline: Set[str]
) -> List[Violation]:
    return [v for v in violations if v.fingerprint() not in baseline]


# ----------------------------------------------------------------------
# Output
# ----------------------------------------------------------------------


def format_human(violations: Sequence[Violation]) -> str:
    if not violations:
        return "repro check: clean"
    lines = [f"{v.location}: {v.rule} {v.message}" for v in violations]
    lines.append(f"repro check: {len(violations)} violation(s)")
    return "\n".join(lines)


def format_json(violations: Sequence[Violation]) -> str:
    return json.dumps([v.to_dict() for v in violations], indent=2)
