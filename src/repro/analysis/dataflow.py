"""Generic worklist dataflow solving over :mod:`repro.analysis.cfg`.

One solver, parameterised by a :class:`Lattice` and a transfer
function, runs every flow-sensitive analysis in the engine:

* **forward** problems (facts flow along edges: alias-of-module-state,
  unpicklable-value tracking, definitely-closed resources,
  thread-started-before-here) seed the entry node and join over
  predecessors;
* **backward** problems (facts flow against edges: "is a release
  inevitable on every path from here to an exit?") seed the exit
  nodes and join over successors.

A lattice supplies ``bottom`` (the "no information yet" element used
to initialise unvisited nodes) and ``join``.  *May* analyses join with
union (:class:`UnionLattice`); *must* analyses join with intersection
(:class:`IntersectLattice`, whose bottom is a distinguished TOP so
that intersection over an empty predecessor set does not erase facts).
Facts must be plain comparable values — the solver iterates until a
fixpoint under ``==``, which terminates for the finite lattices used
here (sets over program variables / resource ids).

The transfer function receives ``(node, fact)`` and returns the fact
on the node's other side; it must not mutate its input.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Generic, TypeVar

from repro.analysis.cfg import CFG

F = TypeVar("F")

#: Distinguished "everything / unvisited" element for must-analyses.
TOP = "⊤"


class Lattice(Generic[F]):
    """Join-semilattice protocol: subclass or duck-type."""

    def bottom(self) -> F:
        raise NotImplementedError

    def join(self, a: F, b: F) -> F:
        raise NotImplementedError

    def widen(self, old: F, new: F) -> F:
        """Widening operator: an upper bound of ``old`` and ``new``
        that forces ascending chains to stabilise.  The finite lattices
        default to plain join (their chains are already finite);
        infinite-height domains (intervals) override this to jump
        still-moving bounds to their extremes."""
        return self.join(old, new)


class UnionLattice(Lattice[FrozenSet]):
    """Powerset lattice with union join — *may* analyses."""

    def bottom(self) -> FrozenSet:
        return frozenset()

    def join(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a | b


class IntersectLattice(Lattice[object]):
    """Powerset lattice with intersection join — *must* analyses.

    ``bottom`` is :data:`TOP` ("every fact holds", the identity of
    intersection) so that a node none of whose predecessors have been
    visited yet does not poison the meet.
    """

    def bottom(self) -> object:
        return TOP

    def join(self, a: object, b: object) -> object:
        if a is TOP or a == TOP:
            return b
        if b is TOP or b == TOP:
            return a
        return a & b  # type: ignore[operator]


class MapLattice(Lattice[Dict[str, str]]):
    """Pointwise map lattice (variable -> abstract value).

    Keys present in only one side keep their value; keys present in
    both with different values collapse to ``conflict`` (dropped when
    ``conflict`` is ``None``) — the shape used by the alias and
    picklability analyses, where disagreement means "unknown".
    """

    def __init__(self, conflict: str = None):  # type: ignore[assignment]
        self.conflict = conflict

    def bottom(self) -> Dict[str, str]:
        return {}

    def join(self, a: Dict[str, str], b: Dict[str, str]) -> Dict[str, str]:
        out = dict(a)
        for key, value in b.items():
            if key not in out:
                out[key] = value
            elif out[key] != value:
                if self.conflict is None:
                    del out[key]
                else:
                    out[key] = self.conflict
        return out


def solve(
    cfg: CFG,
    lattice: Lattice,
    transfer: Callable[[int, F], F],
    entry_fact: F,
    direction: str = "forward",
    widen_after: int = 0,
) -> Dict[int, F]:
    """Run worklist iteration to a fixpoint; returns the *input* fact
    of every node (the fact holding just before a forward node runs,
    or just after a backward node runs).

    ``entry_fact`` seeds the entry node (forward) or the *normal* exit
    (backward) — the raise exit keeps ``bottom``, so a must-analysis
    (bottom = TOP) deliberately ignores explicit-raise unwinding paths
    rather than blaming them.  Unreachable nodes keep ``bottom``.

    ``widen_after`` > 0 switches a node from join to
    :meth:`Lattice.widen` once its input fact has changed that many
    times — required for infinite-height domains (intervals), a no-op
    for the finite set lattices (widen defaults to join).
    """
    if direction == "forward":
        edges = {node.id: list(node.succs) for node in cfg.nodes}
        seeds = [cfg.entry]
    elif direction == "backward":
        preds = cfg.predecessors()
        edges = {node_id: list(srcs) for node_id, srcs in preds.items()}
        seeds = [cfg.exit]
    else:  # pragma: no cover - guarded by callers
        raise ValueError(f"unknown direction {direction!r}")

    in_facts: Dict[int, F] = {node.id: lattice.bottom() for node in cfg.nodes}
    for seed in seeds:
        in_facts[seed] = lattice.join(in_facts[seed], entry_fact)
    # Every node reachable from a seed is processed at least once —
    # enqueueing only on fact *change* would never run any transfer
    # when entry_fact equals bottom (e.g. an empty alias map), leaving
    # the whole analysis a silent no-op.  Unreachable nodes keep bottom.
    reachable: list = []
    seen = set(seeds)
    frontier = deque(seeds)
    while frontier:
        node_id = frontier.popleft()
        reachable.append(node_id)
        for succ in edges[node_id]:
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    worklist = deque(reachable)
    in_worklist = set(reachable)
    updates: Dict[int, int] = {}
    iterations = 0
    limit = max(4096, 64 * len(cfg.nodes) * len(cfg.nodes))
    while worklist:
        iterations += 1
        if iterations > limit:  # pragma: no cover - divergence backstop
            break
        node_id = worklist.popleft()
        in_worklist.discard(node_id)
        out_fact = transfer(node_id, in_facts[node_id])
        for succ in edges[node_id]:
            joined = lattice.join(in_facts[succ], out_fact)
            if joined != in_facts[succ]:
                if widen_after and updates.get(succ, 0) >= widen_after:
                    joined = lattice.widen(in_facts[succ], joined)
                    if joined == in_facts[succ]:
                        continue
                updates[succ] = updates.get(succ, 0) + 1
                in_facts[succ] = joined
                if succ not in in_worklist:
                    in_worklist.add(succ)
                    worklist.append(succ)
    return in_facts


def solve_forward(cfg: CFG, lattice: Lattice, transfer, entry_fact):
    return solve(cfg, lattice, transfer, entry_fact, direction="forward")


def solve_backward(cfg: CFG, lattice: Lattice, transfer, entry_fact):
    return solve(cfg, lattice, transfer, entry_fact, direction="backward")
