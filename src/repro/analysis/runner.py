"""Project-level driver for ``repro check``.

One :func:`check_project` call does the whole job:

1. **Discover** every ``*.py`` under the given paths.
2. **Per-file work** — parse, run the module-scope rules, distill a
   :class:`~repro.analysis.index.ModuleSummary`.  This is the only
   expensive part, so it is the unit of both caching (content-hash
   keyed, see :mod:`repro.analysis.cache`) and parallelism
   (``jobs > 1`` fans files out over a process pool; summaries and
   violations are plain data, so they cross the boundary for free).
3. **Index** the summaries into a :class:`ProjectIndex` and run the
   interprocedural passes (:mod:`repro.analysis.passes`) over it.
   Pass findings are never cached — they depend on the whole program.
4. **Merge**: suppress pass findings on noqa'd lines, drop ``DET1xx``
   findings that duplicate a module-scope ``DET0xx`` hit at the same
   location, and drop syntactic ``EXC001`` hits where a flow-sensitive
   ``EXC1xx`` finding lands on the same line (whole-program analysis
   supersedes the module rule there), sort everything by location.

Each stage is timed into a :class:`~repro.instrument.PipelineMetrics`
(``check.files``, ``check.index``, ``check.pass.<id>``) that the CLI
renders with ``--timings``; ``stats["cfgs"]`` counts the CFGs built
this run (a warm cache run must report 0 — CI asserts it).

Unparseable files become ``PARSE001`` findings instead of crashing the
run.  The result carries the index so the CLI can dump the import/call
graph (``repro check --graph``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import cfg as _cfg
from repro.analysis import values as _values
from repro.analysis.cache import ResultCache, content_hash, engine_fingerprint
from repro.analysis.index import ModuleSummary, ProjectIndex, summarize_module
from repro.analysis.lint import rules as _rules  # noqa: F401  (registers the catalogue)
from repro.analysis.lint.engine import (
    ALL_RULES,
    ModuleInfo,
    Violation,
    iter_python_files,
    run_module_rules,
)
from repro.analysis.passes import TreeProvider, load_catalogue
from repro.instrument import PipelineMetrics

#: Synthetic rule for files the parser rejects.
PARSE_RULE = "PARSE001"


@dataclass
class CheckResult:
    """Everything one ``repro check`` run produced."""

    violations: List[Violation] = field(default_factory=list)
    index: ProjectIndex = field(default_factory=lambda: ProjectIndex([]))
    #: files scanned / parsed this run / served from cache / CFGs built.
    stats: Dict[str, int] = field(default_factory=dict)
    #: per-stage / per-pass wall time (``check.*`` stage names).
    metrics: PipelineMetrics = field(default_factory=PipelineMetrics)


def _display(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _analyze_source(
    args: Tuple[str, str, str, Optional[List[str]]],
) -> Dict[str, object]:
    """Per-file unit of work (top-level so process pools can import it).

    Returns plain dicts only — this crosses process boundaries.
    """
    path_str, display, source, rule_ids = args
    try:
        info = ModuleInfo(Path(path_str), source, display)
    except SyntaxError as exc:
        return {
            "display": display,
            "error": Violation(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule=PARSE_RULE,
                message=f"file does not parse: {exc.msg}",
            ).to_dict(),
        }
    active = [
        rule
        for rule_id, rule in ALL_RULES.items()
        if rule_ids is None or rule_id in rule_ids
    ]
    violations = run_module_rules(info, active)
    before = _cfg.BUILD_COUNT
    values_before = _values.BUILD_COUNT
    summary = summarize_module(info)
    return {
        "display": display,
        "summary": summary.to_dict(),
        "violations": [v.to_dict() for v in violations],
        "cfgs": _cfg.BUILD_COUNT - before,
        "values": _values.BUILD_COUNT - values_before,
    }


def check_project(
    paths: Sequence[Path],
    rule_ids: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
    jobs: int = 1,
    cache_path: Optional[Path] = None,
) -> CheckResult:
    """Run the full analysis (module rules + passes) over ``paths``.

    ``rule_ids`` restricts the combined catalogue (module rules and
    pass rules alike); ``jobs > 1`` parallelises the per-file stage;
    ``cache_path`` enables the content-hash result cache.
    """
    root = Path(root) if root is not None else Path.cwd()
    active_ids = None if rule_ids is None else set(rule_ids)
    passes = load_catalogue()
    if active_ids is not None:
        known = set(ALL_RULES) | {PARSE_RULE}
        for pass_obj in passes.values():
            known.update(pass_obj.rules)
        unknown = active_ids - known
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    module_rule_ids = [
        rule_id
        for rule_id in ALL_RULES
        if active_ids is None or rule_id in active_ids
    ]
    fingerprint = engine_fingerprint(module_rule_ids)
    cache = ResultCache(cache_path) if cache_path is not None else None

    # ------------------------------------------------------------------
    # Discovery + cache probe.
    # ------------------------------------------------------------------
    files: List[Tuple[Path, str, str]] = []  # (path, display, source)
    seen_paths = set()
    for path in iter_python_files(paths):
        resolved = path.resolve()
        if resolved in seen_paths:
            continue
        seen_paths.add(resolved)
        files.append((path, _display(path, root), ""))

    violations: List[Violation] = []
    summaries: List[ModuleSummary] = []
    parsed_infos: Dict[str, ModuleInfo] = {}
    display_to_path: Dict[str, Path] = {d: p for p, d, _ in files}
    misses: List[Tuple[str, str, str, Optional[List[str]]]] = []

    miss_shas: Dict[str, str] = {}
    for path, display, _ in files:
        data = path.read_bytes()
        sha = content_hash(data)
        if cache is not None:
            hit = cache.get(display, sha, fingerprint)
            if hit is not None:
                summary, cached_violations = hit
                summaries.append(summary)
                violations.extend(cached_violations)
                continue
        miss_shas[display] = sha
        misses.append(
            (
                str(path),
                display,
                data.decode("utf-8", errors="replace"),
                sorted(active_ids) if active_ids is not None else None,
            )
        )

    # ------------------------------------------------------------------
    # Per-file stage: serial or fanned out over a process pool.
    # ------------------------------------------------------------------
    active_rules = [
        rule
        for rule_id, rule in ALL_RULES.items()
        if active_ids is None or rule_id in active_ids
    ]
    metrics = PipelineMetrics()
    cfgs_built = 0
    values_built = 0
    results: List[Dict[str, object]] = []
    with metrics.stage("check.files"):
        if jobs > 1 and len(misses) > 1:
            # Summaries and violations are plain data; they come back over
            # the pipe, and the passes re-parse the few trees they need.
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(_analyze_source, misses))
        else:
            # Serial runs keep the parsed trees and lend them to the passes.
            cfg_base = _cfg.BUILD_COUNT
            values_base = _values.BUILD_COUNT
            for path_str, display, source, _ in misses:
                try:
                    info = ModuleInfo(Path(path_str), source, display)
                except SyntaxError as exc:
                    violations.append(
                        Violation(
                            path=display,
                            line=exc.lineno or 1,
                            col=(exc.offset or 0) + 1,
                            rule=PARSE_RULE,
                            message=f"file does not parse: {exc.msg}",
                        )
                    )
                    continue
                parsed_infos[display] = info
                file_violations = run_module_rules(info, active_rules)
                summary = summarize_module(info)
                summaries.append(summary)
                violations.extend(file_violations)
                if cache is not None:
                    cache.put(
                        display, miss_shas[display], fingerprint, summary, file_violations
                    )
            cfgs_built += _cfg.BUILD_COUNT - cfg_base
            values_built += _values.BUILD_COUNT - values_base

        for item in results:
            display = str(item["display"])
            if "error" in item:
                violations.append(Violation.from_dict(item["error"]))  # type: ignore[arg-type]
                continue
            summary = ModuleSummary.from_dict(item["summary"])  # type: ignore[arg-type]
            file_violations = [Violation.from_dict(v) for v in item["violations"]]  # type: ignore[union-attr]
            summaries.append(summary)
            violations.extend(file_violations)
            cfgs_built += int(item.get("cfgs", 0))  # type: ignore[arg-type]
            values_built += int(item.get("values", 0))  # type: ignore[arg-type]
            if cache is not None:
                cache.put(display, miss_shas[display], fingerprint, summary, file_violations)

    # ------------------------------------------------------------------
    # Whole-program stage.
    # ------------------------------------------------------------------
    with metrics.stage("check.index"):
        index = ProjectIndex(summaries)

    def _load_tree(display: str) -> Optional[ModuleInfo]:
        path = display_to_path.get(display)
        if path is None:
            return None
        try:
            return ModuleInfo(path, path.read_text(encoding="utf-8"), display)
        except (OSError, SyntaxError):
            return None

    trees = TreeProvider(_load_tree)
    for display, info in parsed_infos.items():
        trees.seed(display, info)

    module_hit_lines = {
        (v.path, v.line) for v in violations if v.rule.startswith("DET0")
    }
    pass_findings: List[Violation] = []
    for pass_obj in passes.values():
        pass_rules = [
            rule_id
            for rule_id in pass_obj.rules
            if active_ids is None or rule_id in active_ids
        ]
        if not pass_rules:
            continue
        with metrics.stage(f"check.pass.{pass_obj.pass_id}"):
            for v in pass_obj.run(index, trees):
                if v.rule not in pass_rules:
                    continue
                # DET1xx only surfaces what module-scope analysis cannot see.
                if v.rule.startswith("DET1") and (v.path, v.line) in module_hit_lines:
                    continue
                summary = index.files.get(v.path)
                if summary is not None and summary.suppressed(v.line, v.rule):
                    continue
                pass_findings.append(v)

    # The flow-sensitive exception pass supersedes the syntactic EXC001
    # heuristic where both land on the same line — one finding, the one
    # with the interprocedural story, instead of two.
    exc_flow_lines = {
        (v.path, v.line) for v in pass_findings if v.rule.startswith("EXC1")
    }
    violations = [
        v
        for v in violations
        if not (v.rule == "EXC001" and (v.path, v.line) in exc_flow_lines)
    ]
    violations.extend(pass_findings)

    if cache is not None:
        cache.save()

    stats = {
        "files": len(files),
        "parsed": len(misses),
        "cached": len(files) - len(misses),
        "cache_hits": cache.hits if cache is not None else 0,
        "cache_misses": cache.misses if cache is not None else 0,
        "cfgs": cfgs_built,
        # A warm cache serves every ValueSummary from disk: CI asserts
        # this is 0 alongside the zero-CFG invariant.
        "value_summaries": values_built,
        "values_cached": len(files) - len(misses),
    }
    return CheckResult(
        violations=sorted(violations), index=index, stats=stats, metrics=metrics
    )
