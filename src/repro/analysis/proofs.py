"""Static proof obligations for the runtime contracts.

PR 2 armed the geometric invariants of Algorithm 1 as ``@checked``
post-conditions — paid on every call under ``REPRO_CONTRACTS=1`` and
absent otherwise.  This module closes the gap from the other side: it
decomposes each contract into named **obligations** and classifies
every one against the abstract-interpretation facts of
:mod:`repro.analysis.values`:

* **PROVED** — a value-analysis lemma discharges it on the current
  source (e.g. ``pareto_front`` provably returns indices in
  ``[0, len(points))``, so ``front-indices-in-range`` holds on every
  execution);
* **VIOLATED** — the analysis proves the property *broken*: a
  counter-fact (``!index-return:points``) or a definite ``BND1xx``
  hazard in a function the contract site reaches.  The finding carries
  the interprocedural witness chain and fails the lint;
* **UNPROVEN** — outside the domain's reach (quantified pairwise
  properties, pixel-data-dependent occupancy).  The runtime check
  stays on;
* **ASSUMED** — UNPROVEN at a site whose ``def`` carries a reviewed
  trailing ``# proof: assumed`` pragma.  VIOLATED is never masked.

Every site additionally carries an implicit ``no-bound-hazards``
obligation: PROVED when no definite out-of-bounds / negative-extent
hazard exists in any function reachable from the site over the call
graph.

The classification is serialised as a committed **proof ledger**
(schema ``repro.analysis.proofs/1``, see ``repro check --proofs``)
keyed by ``module::qualname`` with the source file's SHA-256, which
the runtime side (:mod:`repro.analysis.contracts`) consults to skip
fully discharged contracts for the active code fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.index import ProjectIndex
from repro.analysis.passes.flowbase import (
    chain,
    flow_call_edges,
    flow_graph,
    reach_from,
)

#: Ledger schema identifier; bump on shape changes.
PROOF_SCHEMA = "repro.analysis.proofs/1"

#: The implicit per-site obligation over call-graph-reachable code.
HAZARD_OBLIGATION = "no-bound-hazards"

PROVED = "PROVED"
UNPROVEN = "UNPROVEN"
VIOLATED = "VIOLATED"
ASSUMED = "ASSUMED"


@dataclass(frozen=True)
class Obligation:
    """One named post-condition of a contract check function.

    ``fact`` is the value-analysis lemma that discharges it (``None``
    for obligations outside the domain — always UNPROVEN/ASSUMED);
    ``producer`` is a qualname suffix naming the function whose return
    value carries the fact (``None`` means the contract site itself).
    """

    name: str
    detail: str
    fact: Optional[str] = None
    producer: Optional[str] = None


#: Contract check function -> its post-condition decomposition.  Keep
#: the honesty rule: an obligation is only backed by ``fact`` when the
#: lemma genuinely implies it; everything else stays runtime-checked.
CHECK_OBLIGATIONS: Dict[str, Tuple[Obligation, ...]] = {
    "check_cut_sets_in_whitespace": (
        Obligation(
            "cut-runs-strictly-interior",
            "every candidate cut band comes from RegionProfile."
            "interior_runs, whose comprehension filter proves "
            "start > 0 and start + size < extent on every element",
            fact="interior-pairs-return",
            producer="interior_runs",
        ),
        Obligation(
            "cut-bands-in-whitespace",
            "the occupancy profile is zero across every chosen cut band"
            " — depends on runtime pixel data; runtime-checked only",
        ),
    ),
    "check_separators_clear_of_boxes": (
        Obligation(
            "separators-clear-of-boxes",
            "no emitted separator overlaps an input box interior — "
            "depends on runtime geometry; runtime-checked only",
        ),
    ),
    "check_layout_tree": (
        Obligation(
            "children-within-parent",
            "every child region lies inside its parent's bbox — "
            "depends on runtime geometry; runtime-checked only",
        ),
        Obligation(
            "siblings-disjoint",
            "sibling regions do not overlap — depends on runtime "
            "geometry; runtime-checked only",
        ),
    ),
    "check_cut_siblings_disjoint": (
        Obligation(
            "siblings-disjoint",
            "sibling regions split by one cut set do not overlap — "
            "depends on runtime geometry; runtime-checked only",
        ),
    ),
    "check_pareto_front": (
        Obligation(
            "front-indices-in-range",
            "every returned front index lies in [0, len(points))",
            fact="index-return:points",
        ),
        Obligation(
            "front-non-dominated",
            "no returned point is dominated by another — a quantified "
            "pairwise property beyond the interval domain; "
            "runtime-checked only",
        ),
    ),
    "check_extraction_spans": (
        Obligation(
            "spans-within-text",
            "every extraction span lies within its source text — "
            "depends on runtime strings; runtime-checked only",
        ),
    ),
}


@dataclass
class SiteProof:
    """One contract site's classification."""

    key: str  # module::qualname
    line: int
    checks: List[str] = field(default_factory=list)
    #: obligation name -> {"status": ..., "detail": ...}
    obligations: Dict[str, Dict[str, str]] = field(default_factory=dict)

    @property
    def discharged(self) -> bool:
        """All obligations PROVED or ASSUMED — the runtime check is
        redundant on this source."""
        return all(
            o["status"] in (PROVED, ASSUMED) for o in self.obligations.values()
        )

    def violated(self) -> List[Tuple[str, str]]:
        return [
            (name, o["detail"])
            for name, o in sorted(self.obligations.items())
            if o["status"] == VIOLATED
        ]


def _producer_keys(index: ProjectIndex, suffix: str) -> List[str]:
    out = []
    for key, _summary, _fn in index.functions():
        qual = key.split("::", 1)[1]
        if qual == suffix or qual.endswith("." + suffix):
            out.append(key)
    return sorted(out)


def classify_sites(index: ProjectIndex) -> List[SiteProof]:
    """Classify every contract site's obligations against the value
    summaries and the call graph."""
    edges = flow_call_edges(index)
    graph = flow_graph(edges)
    facts_of: Dict[str, List[str]] = {}
    hazards_of: Dict[str, List[Tuple[int, str, str]]] = {}
    for key, _summary, fn in index.functions():
        if fn.values is not None:
            facts_of[key] = fn.values.facts
            hazards_of[key] = fn.values.hazards

    sites: List[SiteProof] = []
    for key, summary, fn in index.functions():
        if not fn.contracts:
            continue
        site = SiteProof(
            key=key, line=fn.line, checks=sorted({c for c, _ln in fn.contracts})
        )
        parent = reach_from(graph, [key])
        for check_name in site.checks:
            for ob in CHECK_OBLIGATIONS.get(check_name, ()):
                site.obligations[ob.name] = _classify_obligation(
                    index, facts_of, parent, key, fn.proof_assumed, ob
                )
        site.obligations[HAZARD_OBLIGATION] = _classify_hazards(
            index, hazards_of, parent, key
        )
        sites.append(site)
    return sorted(sites, key=lambda s: s.key)


def _classify_obligation(
    index: ProjectIndex,
    facts_of: Dict[str, List[str]],
    parent: Dict[str, Optional[str]],
    site_key: str,
    assumed: bool,
    ob: Obligation,
) -> Dict[str, str]:
    if ob.fact is None:
        if assumed:
            return {
                "status": ASSUMED,
                "detail": ob.detail + " (reviewed: # proof: assumed)",
            }
        return {"status": UNPROVEN, "detail": ob.detail}
    producers = (
        [site_key] if ob.producer is None else _producer_keys(index, ob.producer)
    )
    for p in producers:
        if "!" + ob.fact in facts_of.get(p, []):
            witness = chain(parent, p) if p in parent else p.split("::", 1)[1]
            return {
                "status": VIOLATED,
                "detail": (
                    f"{ob.detail} — value analysis proves the opposite "
                    f"(counter-fact !{ob.fact} on {p}); witness: {witness}"
                ),
            }
    for p in producers:
        if ob.fact in facts_of.get(p, []):
            return {
                "status": PROVED,
                "detail": f"{ob.detail} (lemma {ob.fact} on {p})",
            }
    if assumed:
        return {
            "status": ASSUMED,
            "detail": ob.detail + " (reviewed: # proof: assumed)",
        }
    return {"status": UNPROVEN, "detail": ob.detail}


def _classify_hazards(
    index: ProjectIndex,
    hazards_of: Dict[str, List[Tuple[int, str, str]]],
    parent: Dict[str, Optional[str]],
    site_key: str,
) -> Dict[str, str]:
    for key in sorted(parent):
        for line, rule, message in hazards_of.get(key, []):
            witness = chain(parent, key)
            return {
                "status": VIOLATED,
                "detail": (
                    f"definite bound hazard {rule} at line {line} of {key}: "
                    f"{message}; reached via {witness}"
                ),
            }
    reachable = len(parent)
    return {
        "status": PROVED,
        "detail": (
            f"no definite out-of-bounds / negative-extent hazard in any of "
            f"the {reachable} function(s) reachable from the site"
        ),
    }


# ----------------------------------------------------------------------
# The ledger
# ----------------------------------------------------------------------


def build_ledger(index: ProjectIndex, root: Path) -> Dict[str, object]:
    """The committed artefact: classification plus per-site source
    fingerprints, deterministic under :func:`ledger_to_json`."""
    sites: Dict[str, object] = {}
    path_of: Dict[str, str] = {}
    for key, summary, _fn in index.functions():
        path_of[key] = summary.display_path
    for site in classify_sites(index):
        display = path_of.get(site.key, "")
        sha = ""
        file_path = root / display
        try:
            sha = hashlib.sha256(file_path.read_bytes()).hexdigest()
        except OSError:
            pass
        sites[site.key] = {
            "path": display,
            "line": site.line,
            "source_sha256": sha,
            "checks": site.checks,
            "obligations": site.obligations,
        }
    return {"schema": PROOF_SCHEMA, "sites": sites}


def ledger_to_json(ledger: Dict[str, object]) -> str:
    return json.dumps(ledger, indent=2, sort_keys=True) + "\n"


def load_ledger(path: Path) -> Optional[Dict[str, object]]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("schema") != PROOF_SCHEMA:
        return None
    return data


__all__ = [
    "ASSUMED",
    "CHECK_OBLIGATIONS",
    "HAZARD_OBLIGATION",
    "PROOF_SCHEMA",
    "PROVED",
    "Obligation",
    "SiteProof",
    "UNPROVEN",
    "VIOLATED",
    "build_ledger",
    "classify_sites",
    "ledger_to_json",
    "load_ledger",
]
