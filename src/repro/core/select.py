"""VS2-Select: search-and-select over logical blocks (§5.2, §5.3).

For every named entity, its lexico-syntactic pattern is searched within
the transcription of each logical block.  A single match is taken as
is; multiple matches go through entity disambiguation — multimodal
(Eq. 2 against interest points, the default), text-only Lesk, or none
(first match), the latter two existing for the Table 9 ablations.

Dataset D1 takes the descriptor path: the form face is identified from
the form title, then each field descriptor is (fuzzily, to absorb OCR
noise) matched as a block-text prefix and the remainder of the block is
the field value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SelectConfig
from repro.core.disambiguate import Eq2Weights, distance_to_interest_points
from repro.core.interest_points import select_interest_points
from repro.core.patterns import CURATED_PATTERNS, PatternMatch, SyntacticPattern
from repro.doc import Document
from repro.doc.document import group_into_lines
from repro.doc.layout_tree import LayoutNode
from repro.embeddings import WordEmbedding, default_embedding
from repro.geometry import BBox, enclosing_bbox
from repro.nlp.fuzzy import normalize_for_match, ocr_fold, similarity_ratio
from repro.nlp.lesk import LeskCandidate, lesk_select
from repro.nlp.tokenizer import normalize_text
from repro.analysis.contracts import check_extraction_spans, checked
from repro.datasets import entity_vocabulary, form_faces
from repro.instrument import PipelineMetrics
from repro.resilience.faults import fault_site
from repro.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class Extraction:
    """One extracted key-value pair.

    ``bbox`` is the logical block's box (the localisation the two-phase
    evaluation scores); ``span_bbox`` the tight box of the matched
    words within it.
    """

    entity_type: str
    text: str
    bbox: BBox
    span_bbox: BBox
    score: float


def block_text(block: LayoutNode) -> str:
    return normalize_text(block.text())


def span_bbox_of(block: LayoutNode, start: int, end: int) -> BBox:
    """Box of the words covering character span [start, end) of the
    block's reading-order transcription."""
    offset = 0
    covered = []
    lines = group_into_lines(block.text_atoms)
    for line_index, line in enumerate(lines):
        if line_index > 0:
            offset += 1  # newline
        for word_index, word in enumerate(line):
            if word_index > 0:
                offset += 1  # space
            w_start, w_end = offset, offset + len(word.text)
            if w_start < end and w_end > start:
                covered.append(word)
            offset = w_end
    if not covered:
        return block.bbox
    return enclosing_bbox([w.bbox for w in covered])


@dataclass
class Candidate:
    block: LayoutNode
    match: PatternMatch
    block_index: int


class VS2Selector:
    """Distantly supervised search-and-select."""

    def __init__(
        self,
        dataset: str,
        config: Optional[SelectConfig] = None,
        patterns: Optional[Dict[str, SyntacticPattern]] = None,
        embedding: Optional[WordEmbedding] = None,
        metrics: Optional[PipelineMetrics] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.dataset = dataset.upper()
        self.config = config or SelectConfig()
        self.embedding = embedding or default_embedding()
        self.metrics = metrics if metrics is not None else PipelineMetrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if patterns is not None:
            self.patterns = patterns
        elif self.dataset in ("D2", "D3"):
            vocab = entity_vocabulary(self.dataset)
            self.patterns = {e: CURATED_PATTERNS[e] for e in vocab}
        else:
            self.patterns = {}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    @checked(post=lambda result, self, doc, blocks: check_extraction_spans(result))
    def extract(self, doc: Document, blocks: Sequence[LayoutNode]) -> List[Extraction]:
        """Search each entity's pattern over the logical blocks and pick
        one match per entity (disambiguating when several fire)."""
        fault_site("select.match")
        if self.dataset == "D1":
            if self.tracer.enabled:
                # The descriptor path never consults interest points;
                # compute the Pareto front anyway (trace-only) so an
                # explain report shows the §5.3.1 objectives on every
                # dataset.  Guarded on `enabled`, so the tracing-off
                # path pays nothing.
                select_interest_points(blocks, self.embedding, tracer=self.tracer)
            with self.metrics.stage("select.form_fields") as t, self.tracer.span(
                "select.form_fields"
            ):
                out = self._extract_form_fields(doc, blocks)
                t.items = len(out)
            return out
        extractions: List[Extraction] = []
        interest_points = select_interest_points(
            blocks, self.embedding, tracer=self.tracer
        )
        page_diag = float(np.hypot(doc.width, doc.height))
        weights = Eq2Weights.from_tuple(
            self.config.eq2_weights.get(self.dataset, (0.25, 0.25, 0.25, 0.25))
        )
        for entity_type, pattern in self.patterns.items():
            with self.metrics.stage("select.search") as t, self.tracer.span(
                "select.search", entity=entity_type
            ):
                candidates = self._find_candidates(blocks, pattern)
                t.items = len(candidates)
            with self.metrics.stage("select.disambiguate"), self.tracer.span(
                "select.disambiguate", entity=entity_type
            ):
                chosen = self._choose(
                    candidates, entity_type, interest_points, weights, page_diag
                )
            if self.tracer.enabled:
                self.tracer.event(
                    "select.decision",
                    entity=entity_type,
                    candidates=len(candidates),
                    matched=chosen is not None,
                    block=chosen.block_index if chosen is not None else None,
                    text=chosen.match.text if chosen is not None else "",
                )
            if chosen is not None:
                extractions.append(
                    Extraction(
                        entity_type=entity_type,
                        text=chosen.match.text,
                        bbox=chosen.block.bbox,
                        span_bbox=span_bbox_of(
                            chosen.block, chosen.match.start, chosen.match.end
                        ),
                        score=chosen.match.strength,
                    )
                )
        return extractions

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _find_candidates(
        self, blocks: Sequence[LayoutNode], pattern: SyntacticPattern
    ) -> List[Candidate]:
        candidates: List[Candidate] = []
        for index, block in enumerate(blocks):
            if not block.text_atoms:
                continue
            text = block_text(block)
            for match in pattern.find(text):
                candidates.append(Candidate(block, match, index))
        return candidates

    # ------------------------------------------------------------------
    # Select
    # ------------------------------------------------------------------
    def _choose(
        self,
        candidates: List[Candidate],
        entity_type: str,
        interest_points: Sequence[LayoutNode],
        weights: Eq2Weights,
        page_diag: float,
    ) -> Optional[Candidate]:
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        mode = self.config.disambiguation
        if mode == "none":
            return candidates[0]
        if mode == "lesk":
            lesk_candidates = [
                LeskCandidate(c.match.text, block_text(c.block)) for c in candidates
            ]
            return candidates[lesk_select(lesk_candidates, entity_type)]
        if mode != "multimodal":
            raise ValueError(f"unknown disambiguation mode {mode!r}")
        scored: List[Tuple[float, int]] = []
        for i, c in enumerate(candidates):
            distance = distance_to_interest_points(
                c.block, interest_points, weights, page_diag, self.embedding
            )
            # Primary key: Eq. 2 proximity to an interest point; the
            # pattern's own confidence discounts it so a weak match in
            # a salient block cannot beat a strong match nearby.
            scored.append((distance - 0.6 * c.match.strength, i))
        scored.sort()
        return candidates[scored[0][1]]

    # ------------------------------------------------------------------
    # D1: descriptor path
    # ------------------------------------------------------------------
    def _extract_form_fields(
        self, doc: Document, blocks: Sequence[LayoutNode]
    ) -> List[Extraction]:
        face = self._identify_face(blocks)
        if face is None:
            return []
        extractions: List[Extraction] = []
        # A form row block starts with the field's line number; an
        # OCR-folded first-token index prunes the descriptor x block
        # matching from quadratic to near-linear.
        from repro.core.formfields import find_descriptor_span
        from repro.doc.document import group_into_lines

        by_first_token: Dict[str, List[Tuple[LayoutNode, list]]] = {}
        for b in blocks:
            if not b.text_atoms:
                continue
            words = [w for line in group_into_lines(b.text_atoms) for w in line]
            by_first_token.setdefault(ocr_fold(words[0].text), []).append((b, words))
        for field in face.fields:
            first = ocr_fold(normalize_for_match(field.descriptor).split()[0])
            best: Optional[Tuple[float, LayoutNode, list, int]] = None
            for b, words in by_first_token.get(first, []):
                span = find_descriptor_span(words, field.descriptor, min_ratio=0.8)
                if span is None:
                    continue
                _, end_w, ratio = span
                value_words = words[end_w:]
                if not value_words:
                    continue
                if best is None or ratio > best[0]:
                    best = (ratio, b, value_words, end_w)
            if self.tracer.enabled:
                self.tracer.event(
                    "select.decision",
                    entity=field.entity_type,
                    candidates=len(by_first_token.get(first, [])),
                    matched=best is not None,
                    block=None,
                    text=" ".join(w.text for w in best[2]) if best else "",
                )
            if best is None:
                continue
            ratio, block, value_words, _ = best
            extractions.append(
                Extraction(
                    entity_type=field.entity_type,
                    text=" ".join(w.text for w in value_words),
                    bbox=block.bbox,
                    span_bbox=enclosing_bbox([w.bbox for w in value_words]),
                    score=ratio,
                )
            )
        return extractions

    def _identify_face(self, blocks: Sequence[LayoutNode]):
        """Match the form-title block against the 20 known face titles."""
        faces = form_faces()
        best: Optional[Tuple[float, object]] = None
        for block in blocks[:12]:  # titles live near the top of the page
            text = normalize_for_match(block_text(block))
            if not text:
                continue
            for face in faces:
                title = normalize_for_match(face.title)
                ratio = similarity_ratio(text[: len(title) + 6], title)
                if best is None or ratio > best[0]:
                    best = (ratio, face)
        if best is None or best[0] < 0.6:
            return None
        return best[1]
