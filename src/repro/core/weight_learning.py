"""Learning the Eq. 2 weights from observed data (§7, future work).

The paper sets the (α, β, γ, ν) trade-off per corpus by rule of thumb
(§5.3.2) and names "learning to weight each feature based on observed
data" as future work.  This module implements that extension: a simplex
grid search over the weights, scoring each candidate by end-to-end F1
on a small annotated development split, exactly the signal a deployed
system has after labelling a handful of documents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.config import SelectConfig, VS2Config
from repro.core.segment import VS2Segmenter
from repro.core.select import Extraction, VS2Selector
from repro.doc import Document
from repro.embeddings import default_embedding
from repro.eval.metrics import end_to_end_scores
from repro.ocr.deskew import rotate_back

Weights = Tuple[float, float, float, float]


def candidate_weight_grid(step: float = 0.25) -> List[Weights]:
    """All non-negative (α, β, γ, ν) on the ``step``-spaced simplex."""
    if not 0.0 < step <= 0.5:
        raise ValueError("step must be in (0, 0.5]")
    n = round(1.0 / step)
    grid: List[Weights] = []
    for a in range(n + 1):
        for b in range(n + 1 - a):
            for c in range(n + 1 - a - b):
                d = n - a - b - c
                grid.append((a * step, b * step, c * step, d * step))
    return grid


@dataclass
class WeightLearningResult:
    weights: Weights
    f1: float
    tried: int


def learn_eq2_weights(  # exc: boundary - offline training entry; faults propagate unless run supervised
    dataset: str,
    dev_docs: Sequence[Tuple[Document, Document, float]],
    step: float = 0.25,
) -> WeightLearningResult:
    """Grid-search Eq. 2 weights on a development split.

    Parameters
    ----------
    dataset:
        ``"D2"`` or ``"D3"`` (D1's descriptor path does not use Eq. 2).
    dev_docs:
        Triples ``(original, observed, skew_angle)`` — the annotated
        document, its cleaned OCR view and the deskew angle (0.0 for
        upright sources).  Segmentation runs once per document; only
        the selection phase re-runs per weight candidate.
    step:
        Simplex resolution (0.25 ⇒ 35 candidates).
    """
    dataset = dataset.upper()
    if dataset not in ("D2", "D3"):
        raise ValueError("Eq. 2 weight learning applies to D2/D3")
    embedding = default_embedding()
    segmenter = VS2Segmenter(VS2Config().segment, embedding)
    segmented = [
        (original, observed, angle, segmenter.segment(observed).logical_blocks())
        for original, observed, angle in dev_docs
    ]

    best: WeightLearningResult | None = None
    grid = candidate_weight_grid(step)
    for weights in grid:
        config = SelectConfig()
        config.eq2_weights = {dataset: weights}
        selector = VS2Selector(dataset, config, embedding=embedding)
        results = []
        for original, observed, angle, blocks in segmented:
            extractions = [
                Extraction(
                    e.entity_type, e.text,
                    rotate_back(e.bbox, angle, observed),
                    rotate_back(e.span_bbox, angle, observed),
                    e.score,
                )
                for e in selector.extract(observed, blocks)
            ]
            results.append((extractions, original))
        f1 = end_to_end_scores(results)[0].f1
        if best is None or f1 > best.f1 + 1e-9:
            best = WeightLearningResult(weights, f1, len(grid))
    assert best is not None
    return best
