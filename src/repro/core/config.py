"""Configuration of the VS2 pipeline.

Every tunable the paper mentions (and every ablation switch of Table 9)
lives here, so experiments are reproducible from a config value rather
than from code edits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass
class SegmentConfig:
    """VS2-Segment parameters."""

    #: Grid cell size (layout units) for whitespace/cut computation.
    cell: float = 4.0
    #: Minimum delimiter span as a multiple of the region's max element
    #: height — horizontal (between stacked areas) and vertical
    #: (between columns).  Gaps below the floor are ordinary spacing.
    min_h_gap_ratio: float = 0.6
    min_v_gap_ratio: float = 2.0
    #: Recursion depth cap (defensive; convergence normally stops it).
    max_depth: int = 8
    #: Use the implicit-modifier clustering step (Table 9 ablation A2
    #: disables visual-feature clustering).
    use_visual_clustering: bool = True
    #: Use semantic merging (Table 9 ablation A1 disables it).
    use_semantic_merging: bool = True
    #: θ bounds of the merge threshold schedule (paper footnote:
    #: θ_h = θ_min + (θ_max − θ_min)/10 · h).
    theta_min: float = 0.0
    theta_max: float = 1.0
    #: Two sibling areas may merge only when the whitespace between
    #: them is at most this multiple of the larger mean font size.
    merge_gap_ratio: float = 0.8
    #: Minimum atoms for a region to be further segmented.
    min_atoms_to_split: int = 2
    #: Evaluate candidate cuts through precomputed prefix-sum projection
    #: profiles (O(1) per candidate) instead of rescanning the grid per
    #: slope.  Decisions are byte-identical either way — the naive scan
    #: stays available (``--naive-cuts``) as the A/B reference, verified
    #: by the ``cut.decision`` ledger diff (docs/PERFORMANCE.md).
    fast_cuts: bool = True
    #: Weight of the font-type dissimilarity term in the clustering
    #: distance — the paper's §7 future-work feature ("a generalizable
    #: feature to identify font-type").  0 reproduces the published
    #: system; the extension bench sweeps it.
    font_type_weight: float = 0.0


@dataclass
class SelectConfig:
    """VS2-Select / disambiguation parameters."""

    #: Eq. 2 weights (α, β, γ, ν) by dataset; §5.3.2: visually ornate
    #: corpora (D2) weigh visual terms above the textual term γ, while
    #: balanced corpora (D1, D3) use α ≈ β ≈ γ ≈ ν.
    eq2_weights: Dict[str, Tuple[float, float, float, float]] = field(
        default_factory=lambda: {
            "D1": (0.25, 0.25, 0.25, 0.25),
            "D2": (0.30, 0.30, 0.10, 0.30),
            "D3": (0.25, 0.25, 0.25, 0.25),
        }
    )
    #: Use the multimodal disambiguation (Table 9 ablation A3 turns it
    #: off — first match wins; A4 swaps in text-only Lesk).
    disambiguation: str = "multimodal"  # "multimodal" | "none" | "lesk"
    #: Minimum support fraction when mining patterns from the holdout.
    min_support_fraction: float = 0.25
    #: Pattern source: "mined" (holdout + subtree mining) or "curated"
    #: (the compiled Tables 3/4 pattern library).
    pattern_source: str = "curated"
    #: Skip visual selection entirely and answer from the NER fallback.
    #: This is the proactive form of the select→ner_fallback degradation
    #: rung: the serve-layer circuit breaker flips it while the select
    #: stage's breaker is open, instead of waiting for each doc to fail.
    ner_only: bool = False


@dataclass
class VS2Config:
    """Top-level configuration."""

    segment: SegmentConfig = field(default_factory=SegmentConfig)
    select: SelectConfig = field(default_factory=SelectConfig)
    ocr_seed: int = 0

    @staticmethod
    def for_dataset(dataset: str) -> "VS2Config":
        """Defaults per dataset (only Eq. 2 weights differ)."""
        return VS2Config()
