"""Interest points: optimal subset selection over logical blocks (§5.3.1).

An interest point is a visually prominent or semantically significant
area.  Each logical block is scored on the paper's three objectives —

1. maximise the height of its bounding box (large type ⇒ salience);
2. maximise semantic coherence (sum of pairwise cosine similarities of
   its text elements);
3. minimise average word density (sparse, large areas are highlights);

— and the **first-order Pareto front** under non-dominated sorting [25]
is the selected subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.doc.layout_tree import LayoutNode
from repro.embeddings import WordEmbedding, default_embedding
from repro.optimize import pareto_front
from repro.trace import Tracer


@dataclass(frozen=True)
class BlockObjectives:
    """The three §5.3.1 objectives of one block (maximisation form)."""

    height: float
    coherence: float
    negated_density: float

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.height, self.coherence, self.negated_density)


def semantic_coherence(block: LayoutNode, embedding: WordEmbedding) -> float:
    """Sum of pairwise cosine similarities between the block's words.

    Capped at 40 words (coherence of a long paragraph saturates; the
    quadratic sum would otherwise dwarf every other block).
    """
    texts = [a.text for a in block.text_atoms][:40]
    if len(texts) < 2:
        return 0.0
    vectors = [embedding.embed(t) for t in texts]
    # Norms hoisted out of the O(n²) pair loop; the inlined expression
    # mirrors cosine_similarity exactly (same dot, same guards), so the
    # sum is bitwise identical to the per-pair calls.
    norms = [float(np.linalg.norm(v)) for v in vectors]
    total = 0.0
    for i in range(len(vectors)):
        for j in range(i + 1, len(vectors)):
            na, nb = norms[i], norms[j]
            if na == 0.0 or nb == 0.0:
                continue
            total += float(np.dot(vectors[i], vectors[j]) / (na * nb))
    return total


def block_objectives(
    block: LayoutNode, embedding: Optional[WordEmbedding] = None
) -> BlockObjectives:
    embedding = embedding or default_embedding()
    return BlockObjectives(
        height=block.bbox.h,
        coherence=semantic_coherence(block, embedding),
        negated_density=-block.word_density(),
    )


def select_interest_points(
    blocks: Sequence[LayoutNode],
    embedding: Optional[WordEmbedding] = None,
    tracer: Optional[Tracer] = None,
) -> List[LayoutNode]:
    """The first-order Pareto front of ``blocks`` under the three
    objectives.  Blocks without text never qualify.

    With tracing enabled, one ``pareto.front`` event records every
    block's objective vector and whether it survived non-dominated
    sorting.
    """
    embedding = embedding or default_embedding()
    textual = [b for b in blocks if b.text_atoms]
    if not textual:
        if tracer is not None and tracer.enabled:
            tracer.event("pareto.front", blocks=[], selected=0, total=0)
        return []
    points = [block_objectives(b, embedding).as_tuple() for b in textual]
    front = pareto_front(points)
    if tracer is not None and tracer.enabled:
        keep = set(front)
        tracer.event(
            "pareto.front",
            blocks=[
                {
                    "index": i,
                    "height": round(float(p[0]), 3),
                    "coherence": round(float(p[1]), 4),
                    "density": round(-float(p[2]), 4),
                    "selected": i in keep,
                }
                for i, p in enumerate(points)
            ],
            selected=len(front),
            total=len(textual),
        )
    return [textual[i] for i in front]


def interest_point_matrix(blocks: Sequence[LayoutNode]) -> np.ndarray:
    """Objective matrix (diagnostics / figure benches)."""
    return np.array([block_objectives(b).as_tuple() for b in blocks])
