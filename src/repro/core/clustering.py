"""Implicit-modifier clustering (§5.1.2, second phase of an iteration).

When an area has no explicit whitespace delimiter, VS2-Segment groups
its atomic elements by the low-level visual features of Table 1:
proximity, alignment, colour and size similarity — the implicit
modifiers designers use (negative space, balance, symmetry).

Protocol, following the paper:

1. assume a 2×2 equal-partition grid over the area; from each non-empty
   cell pick the *medoid* element (minimum average distance to the
   cell's other elements) as a cluster seed;
2. iteratively assign: the closest (feature-space) pair not *visually
   separated* by another element joins the same cluster;
3. stop when assignments are stable.

We realise step 2 as constrained agglomeration over the seeded
partition: elements attach to their nearest seeded cluster, then
clusters merge while the closest inter-cluster pair is both within the
distance threshold and not visually separated.  Finally clusters are
split into spatially connected components, so a "cluster" is always a
contiguous visual area (a logical-block candidate).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.features import clustering_distance_matrix, visually_separated
from repro.doc.elements import AtomicElement
from repro.geometry import BBox, enclosing_bbox


def _grid_medoid_seeds(
    elements: Sequence[AtomicElement], frame: BBox, distances: np.ndarray
) -> List[int]:
    """One medoid per non-empty cell of a 2×2 grid over ``frame``."""
    cells: List[List[int]] = [[] for _ in range(4)]
    mid_x, mid_y = frame.centroid
    for i, e in enumerate(elements):
        cx, cy = e.bbox.centroid
        col = 0 if cx < mid_x else 1
        row = 0 if cy < mid_y else 1
        cells[row * 2 + col].append(i)
    seeds: List[int] = []
    for members in cells:
        if not members:
            continue
        if len(members) == 1:
            seeds.append(members[0])
            continue
        sub = distances[np.ix_(members, members)]
        seeds.append(members[int(np.argmin(sub.mean(axis=1)))])
    return seeds


def cluster_elements(
    elements: Sequence[AtomicElement],
    frame: BBox,
    distance_threshold: float = 0.50,
    max_gap_ratio: float = 3.0,
    font_type_weight: float = 0.0,
) -> List[List[AtomicElement]]:
    """Group ``elements`` into visually coherent clusters.

    Parameters
    ----------
    distance_threshold:
        Feature-space distance above which clusters refuse to merge.
        Under :func:`clustering_distance_matrix` scaling, a plain word
        gap scores ≈ 0.12 and an inter-block gap approaches 1, so the default
        separates blocks while never splitting a paragraph.
    max_gap_ratio:
        Spatial connectivity: two elements are "adjacent" when their box
        gap is below this multiple of the smaller element height; each
        returned cluster is connected under this relation.

    Returns a partition of ``elements`` (singletons possible).
    """
    n = len(elements)
    if n <= 1:
        return [list(elements)] if n else []

    distances = clustering_distance_matrix(elements, frame, font_type_weight=font_type_weight)

    # The paper's iterative step — "the closest neighbour pair not
    # visually separated joins the same cluster", repeated to a fixed
    # point — is single-link agglomeration under a threshold, whose
    # result is exactly the connected components of the
    # under-threshold / unseparated pair graph (merge order does not
    # change components).  The 2×2 grid medoids only seed the
    # iteration, so they do not alter the fixed point.
    labels = _link_components(elements, distances, distance_threshold)
    labels = _split_disconnected(elements, labels, max_gap_ratio)

    clusters: List[List[AtomicElement]] = []
    for lbl in sorted(set(labels)):
        clusters.append([elements[i] for i in range(n) if labels[i] == lbl])
    return clusters


def _link_components(
    elements: Sequence[AtomicElement],
    distances: np.ndarray,
    threshold: float,
) -> List[int]:
    """Connected components of the (d < threshold ∧ unseparated) graph."""
    n = len(elements)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    close_pairs = [
        (distances[i, j], i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if distances[i, j] < threshold
    ]
    close_pairs.sort()
    for _, i, j in close_pairs:
        ri, rj = find(i), find(j)
        if ri == rj:
            continue
        if visually_separated(elements[i], elements[j], elements):
            continue
        parent[ri] = rj
    return [find(i) for i in range(n)]


def _split_disconnected(
    elements: Sequence[AtomicElement], labels: List[int], max_gap_ratio: float
) -> List[int]:
    """Split each cluster into spatially connected components."""
    labels = list(labels)
    next_label = max(labels) + 1
    for lbl in sorted(set(labels)):
        members = [i for i, l in enumerate(labels) if l == lbl]
        if len(members) <= 1:
            continue
        adjacency = {i: [] for i in members}
        for ai in range(len(members)):
            for bi in range(ai + 1, len(members)):
                i, j = members[ai], members[bi]
                gap = elements[i].bbox.gap_distance(elements[j].bbox)
                limit = max_gap_ratio * min(elements[i].bbox.h, elements[j].bbox.h)
                if gap <= limit:
                    adjacency[i].append(j)
                    adjacency[j].append(i)
        seen = set()
        components: List[List[int]] = []
        for start in members:
            if start in seen:
                continue
            stack, comp = [start], []
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                comp.append(node)
                stack.extend(adjacency[node])
            components.append(comp)
        for comp in components[1:]:
            for i in comp:
                labels[i] = next_label
            next_label += 1
    return labels


def clusters_to_bboxes(clusters: Sequence[Sequence[AtomicElement]]) -> List[BBox]:
    return [enclosing_bbox([e.bbox for e in c]) for c in clusters if c]
