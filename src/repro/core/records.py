"""Extraction records: the paper's database-loadable deliverable.

§1: "our goal is to extract a list of key-value pairs from the
document ... This list of key-value pairs can be loaded into a database
after schema mapping."  This module provides the serialisation layer a
downstream consumer needs: JSON-lines export/import of extraction
records with provenance (document, box, confidence), plus simple schema
mapping into typed values.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, TextIO, Union

from repro.core.select import Extraction
from repro.geometry import BBox


@dataclass(frozen=True)
class ExtractionRecord:
    """One key-value pair with provenance."""

    doc_id: str
    entity_type: str
    text: str
    x: float
    y: float
    w: float
    h: float
    score: float

    @staticmethod
    def from_extraction(doc_id: str, e: Extraction) -> "ExtractionRecord":
        return ExtractionRecord(
            doc_id, e.entity_type, e.text, e.bbox.x, e.bbox.y, e.bbox.w, e.bbox.h, e.score
        )

    @property
    def bbox(self) -> BBox:
        return BBox(self.x, self.y, self.w, self.h)

    def to_json(self) -> str:
        return json.dumps(asdict(self), ensure_ascii=False)

    @staticmethod
    def from_json(line: str) -> "ExtractionRecord":
        return ExtractionRecord(**json.loads(line))


def write_records(records: Iterable[ExtractionRecord], stream: TextIO) -> int:
    """Write records as JSON lines; returns the count written."""
    count = 0
    for record in records:
        stream.write(record.to_json() + "\n")
        count += 1
    return count


def read_records(stream: TextIO) -> Iterator[ExtractionRecord]:
    """Yield records from a JSON-lines stream."""
    for line in stream:
        line = line.strip()
        if line:
            yield ExtractionRecord.from_json(line)


# ----------------------------------------------------------------------
# Schema mapping
# ----------------------------------------------------------------------
_PHONE_DIGITS = re.compile(r"\d")


def normalize_phone(text: str) -> Optional[str]:
    """Canonical 10-digit phone, or ``None`` when not phone-shaped."""
    digits = "".join(_PHONE_DIGITS.findall(text))
    if len(digits) == 11 and digits.startswith("1"):
        digits = digits[1:]
    if len(digits) != 10:
        return None
    return f"({digits[:3]}) {digits[3:6]}-{digits[6:]}"


def normalize_money(text: str) -> Optional[int]:
    """Dollar amount as an integer, handling the ``$450K`` shorthand."""
    m = re.search(r"\$?\s?([\d,]+(?:\.\d+)?)\s*([kKmM])?", text)
    if not m or not m.group(1):
        return None
    try:
        value = float(m.group(1).replace(",", ""))
    except ValueError:
        return None
    suffix = (m.group(2) or "").lower()
    if suffix == "k":
        value *= 1_000
    elif suffix == "m":
        value *= 1_000_000
    return int(value)


def normalize_sqft(text: str) -> Optional[int]:
    """Area in square feet from sqft/acre phrasings."""
    lower = text.lower().replace(",", "")
    m = re.search(r"([\d.]+)\s*(?:sq\s*ft|sqft|square feet|sq)", lower)
    if m:
        return int(float(m.group(1)))
    m = re.search(r"([\d.]+)\s*acres?", lower)
    if m:
        return int(float(m.group(1)) * 43560)
    return None


#: Default schema: entity type → normaliser (identity when absent).
DEFAULT_SCHEMA: Dict[str, Callable[[str], object]] = {
    "broker_phone": normalize_phone,
    "property_size": normalize_sqft,
}


def map_schema(
    records: Iterable[ExtractionRecord],
    schema: Optional[Dict[str, Callable[[str], object]]] = None,
) -> List[Dict[str, object]]:
    """Apply per-entity normalisers; unmappable values keep raw text
    under ``<entity>_raw`` so nothing is silently dropped."""
    schema = DEFAULT_SCHEMA if schema is None else schema
    rows: Dict[str, Dict[str, object]] = {}
    for record in records:
        row = rows.setdefault(record.doc_id, {"doc_id": record.doc_id})
        mapper = schema.get(record.entity_type)
        if mapper is None:
            row[record.entity_type] = record.text
            continue
        value = mapper(record.text)
        if value is None:
            row[f"{record.entity_type}_raw"] = record.text
        else:
            row[record.entity_type] = value
    return list(rows.values())
