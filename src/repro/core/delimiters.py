"""Algorithm 1 — identification of visual delimiters.

Given the consecutive-valid-cut sets of a visual area and its textual
elements, decide which cut sets act as true visual separators.  The
paper's assumptions (§5.1.2): (a) inter-area whitespace is distributed
differently from intra-area spacing, and (b) font size is uniform
within a coherent area.  Its procedure:

1. normalise each cut set's width by the height of its *neighbouring
   bounding box* relative to the area's tallest element
   (``width_i = |s_i| · max_k h(neighbour_k) / max_j h(b_j)``);
2. scan the prefix correlation ρ(W, H) between separator widths and
   neighbour heights in topological order;
3. sort the sets by width (descending) and take the sets up to the
   *first inflection point* of the width distribution as delimiters.

The printed pseudocode is ambiguous about which side of the inflection
survives; we resolve it by intent: **wide** separators (relative to
neighbouring text) are the true delimiters, narrow ones are ordinary
line/word spacing, and the inflection of the sorted width curve is the
boundary.  A physical floor (minimum span as a fraction of the area's
max element height) rejects degenerate "delimiters" in areas whose
spacing is uniform — there, the inflection point is noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.contracts import check_separators_clear_of_boxes, checked
from repro.geometry import BBox
from repro.geometry.cuts import CutSet
from repro.trace import Tracer


@dataclass(frozen=True)
class ScoredCutSet:
    """A cut set with its Algorithm-1 normalised width."""

    cut_set: CutSet
    normalized_width: float
    neighbour_height: float


def _max_height(boxes: Sequence[BBox]) -> float:
    return max((b.h for b in boxes), default=1.0)


def score_cut_sets(cut_sets: Sequence[CutSet], boxes: Sequence[BBox]) -> List[ScoredCutSet]:
    """Lines 4–6 of Algorithm 1: normalised widths."""
    if not boxes:
        return []
    max_h = _max_height(boxes)
    scored = []
    for s in cut_sets:
        neighbour = s.neighbouring_bbox(list(boxes))
        nh = neighbour.h if neighbour is not None else max_h
        scored.append(ScoredCutSet(s, s.span_units * nh / max_h, nh))
    return scored


def prefix_correlations(scored: Sequence[ScoredCutSet]) -> List[float]:
    """Lines 7–11: running Pearson correlation between widths and
    neighbour heights over the topologically sorted prefix."""
    ordered = sorted(scored, key=lambda s: s.cut_set.start_position()[::-1])
    correlations: List[float] = []
    for i in range(2, len(ordered) + 1):
        w = np.array([s.normalized_width for s in ordered[:i]])
        h = np.array([s.neighbour_height for s in ordered[:i]])
        if w.std() < 1e-12 or h.std() < 1e-12:
            correlations.append(0.0)
        else:
            correlations.append(float(np.corrcoef(w, h)[0, 1]))
    return correlations


def first_inflection_index(values: Sequence[float]) -> Optional[int]:
    """Index of the first sign change of the discrete second difference
    (the paper derives inflection points from f''= 0)."""
    v = np.asarray(values, dtype=float)
    if len(v) < 3:
        return None
    second = np.diff(v, n=2)
    signs = np.sign(second)
    for i in range(len(signs) - 1):
        if signs[i] != 0 and signs[i + 1] != 0 and signs[i] != signs[i + 1]:
            return i + 1  # index into `values`
    nonzero = np.nonzero(signs)[0]
    if len(nonzero) == 0:
        return None
    # Monotone curvature: the knee is the largest curvature magnitude.
    return int(np.argmax(np.abs(second))) + 1


@checked(post=lambda result, cut_sets, boxes, min_gap_ratio, **_: check_separators_clear_of_boxes(result, boxes))
def identify_visual_delimiters(
    cut_sets: Sequence[CutSet],
    boxes: Sequence[BBox],
    min_gap_ratio: float,
    tracer: Optional[Tracer] = None,
    orientation: str = "",
) -> List[CutSet]:
    """Algorithm 1: the subset of ``cut_sets`` acting as separators.

    Parameters
    ----------
    cut_sets:
        Interior consecutive-valid-cut sets of the area (one
        orientation at a time).
    boxes:
        Bounding boxes of the area's textual elements.
    min_gap_ratio:
        Physical floor: a delimiter's span must be at least this
        multiple of the area's max element height.
    tracer / orientation:
        When a tracer with tracing enabled is supplied, one
        ``cut.decision`` event is emitted per candidate cut set (in
        topological order) carrying its score, the running prefix
        correlation, and the verdict with its reason.
    """
    if not cut_sets or not boxes:
        return []
    max_h = _max_height(boxes)
    floor = min_gap_ratio * max_h

    scored = score_cut_sets(cut_sets, boxes)
    # Correlation scan (pseudocode lines 7–11) — kept for diagnostic
    # fidelity; the decision below keys on the sorted width curve.
    correlations = prefix_correlations(scored)

    by_width = sorted(scored, key=lambda s: -s.normalized_width)
    head = by_width
    if len(by_width) >= 3:
        widths = [s.normalized_width for s in by_width]
        drops = [widths[i] - widths[i + 1] for i in range(len(widths) - 1)]
        k = int(np.argmax(drops))
        significant = widths[k] >= 1.5 * widths[k + 1] + 1e-9
        # Truncate at the inflection only when the narrow mode is
        # plausibly ordinary spacing; a population of uniformly wide
        # separators (a form's row gaps) has no meaningful inflection.
        tail_is_spacing = by_width[k + 1].cut_set.span_units < 1.25 * floor
        if significant and tail_is_spacing:
            head = by_width[: k + 1]

    accepted = [s.cut_set for s in head if s.cut_set.span_units >= floor]

    if tracer is not None and tracer.enabled:
        head_ids = {id(s) for s in head}
        ordered = sorted(scored, key=lambda s: s.cut_set.start_position()[::-1])
        for j, s in enumerate(ordered):
            if s.cut_set.span_units < floor:
                reason = "below_floor"
            elif id(s) not in head_ids:
                reason = "inflection_tail"
            else:
                reason = "delimiter"
            tracer.event(
                "cut.decision",
                orientation=orientation,
                position=round(float(s.cut_set.mid_units), 3),
                span_units=round(float(s.cut_set.span_units), 3),
                normalized_width=round(float(s.normalized_width), 4),
                correlation=round(float(correlations[j - 1]), 4) if j >= 1 else 0.0,
                floor=round(float(floor), 3),
                accepted=reason == "delimiter",
                reason=reason,
            )

    return accepted
