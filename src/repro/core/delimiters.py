"""Algorithm 1 — identification of visual delimiters.

Given the consecutive-valid-cut sets of a visual area and its textual
elements, decide which cut sets act as true visual separators.  The
paper's assumptions (§5.1.2): (a) inter-area whitespace is distributed
differently from intra-area spacing, and (b) font size is uniform
within a coherent area.  Its procedure:

1. normalise each cut set's width by the height of its *neighbouring
   bounding box* relative to the area's tallest element
   (``width_i = |s_i| · max_k h(neighbour_k) / max_j h(b_j)``);
2. scan the prefix correlation ρ(W, H) between separator widths and
   neighbour heights in topological order;
3. sort the sets by width (descending) and take the sets up to the
   *first inflection point* of the width distribution as delimiters.

The printed pseudocode is ambiguous about which side of the inflection
survives; we resolve it by intent: **wide** separators (relative to
neighbouring text) are the true delimiters, narrow ones are ordinary
line/word spacing, and the inflection of the sorted width curve is the
boundary.  A physical floor (minimum span as a fraction of the area's
max element height) rejects degenerate "delimiters" in areas whose
spacing is uniform — there, the inflection point is noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.contracts import check_separators_clear_of_boxes, checked
from repro.geometry import BBox
from repro.geometry.cuts import CutSet
from repro.trace import Tracer


@dataclass(frozen=True)
class ScoredCutSet:
    """A cut set with its Algorithm-1 normalised width."""

    cut_set: CutSet
    normalized_width: float
    neighbour_height: float


def _max_height(boxes: Sequence[BBox]) -> float:
    return max((b.h for b in boxes), default=1.0)


def score_cut_sets(cut_sets: Sequence[CutSet], boxes: Sequence[BBox]) -> List[ScoredCutSet]:
    """Lines 4–6 of Algorithm 1: normalised widths.

    The neighbouring-box search is the hot loop of this step (every
    cut set scans every box), so the distance is evaluated vectorised:
    a squared-gap prefilter narrows each set's candidates to the boxes
    within rounding distance of the minimum, then the original
    ``(gap, -h, x, y)`` key breaks ties among those few — the selected
    box is identical to :meth:`CutSet.neighbouring_bbox`'s, because a
    box excluded by the prefilter has a strictly larger gap (relative
    squared-distance slack 1e-9 vastly exceeds the ≤1-ulp error of
    either distance form).
    """
    if not boxes:
        return []
    box_list = list(boxes)
    max_h = _max_height(box_list)
    if not cut_sets:
        return []
    bx = np.array([b.x for b in box_list])
    by = np.array([b.y for b in box_list])
    bx2 = np.array([b.x2 for b in box_list])
    by2 = np.array([b.y2 for b in box_list])
    extent = {
        "horizontal": max(b.x2 for b in box_list),
        "vertical": max(b.y2 for b in box_list),
    }
    scored = []
    for s in cut_sets:
        line = s.as_bbox(extent[s.orientation])
        dx = np.maximum(np.maximum(bx - line.x2, line.x - bx2), 0.0)
        dy = np.maximum(np.maximum(by - line.y2, line.y - by2), 0.0)
        sq = dx * dx + dy * dy
        candidates = np.flatnonzero(sq <= sq.min() * (1.0 + 1e-9))
        if len(candidates) == 1:
            neighbour = box_list[candidates[0]]
        else:
            neighbour = min(
                (box_list[i] for i in candidates),
                key=lambda b: (line.gap_distance(b), -b.h, b.x, b.y),
            )
        nh = neighbour.h
        scored.append(ScoredCutSet(s, s.span_units * nh / max_h, nh))
    return scored


def prefix_correlations(scored: Sequence[ScoredCutSet]) -> List[float]:
    """Lines 7–11: running Pearson correlation between widths and
    neighbour heights over the topologically sorted prefix.

    All prefixes are evaluated in one cumulant pass (running sums of
    ``w``, ``h``, ``w²``, ``h²``, ``wh``) instead of ``n`` calls to
    ``np.corrcoef`` — O(n) total.  Degenerate prefixes (either series
    still constant) report 0.0, as before.
    """
    ordered = sorted(scored, key=lambda s: s.cut_set.start_position()[::-1])
    n = len(ordered)
    if n < 2:
        return []
    w = np.array([s.normalized_width for s in ordered])
    h = np.array([s.neighbour_height for s in ordered])
    k = np.arange(1, n + 1, dtype=float)
    mean_w = np.cumsum(w) / k
    mean_h = np.cumsum(h) / k
    var_w = np.maximum(np.cumsum(w * w) / k - mean_w * mean_w, 0.0)
    var_h = np.maximum(np.cumsum(h * h) / k - mean_h * mean_h, 0.0)
    cov = np.cumsum(w * h) / k - mean_w * mean_h
    std_w = np.sqrt(var_w)
    std_h = np.sqrt(var_h)
    degenerate = (std_w < 1e-12) | (std_h < 1e-12)
    denom = np.where(degenerate, 1.0, std_w * std_h)
    corr = np.where(degenerate, 0.0, cov / denom)
    return [float(c) for c in corr[1:]]


def first_inflection_index(values: Sequence[float]) -> Optional[int]:
    """Index of the first sign change of the discrete second difference
    (the paper derives inflection points from f''= 0)."""
    v = np.asarray(values, dtype=float)
    if len(v) < 3:
        return None
    second = np.diff(v, n=2)
    signs = np.sign(second)
    for i in range(len(signs) - 1):
        if signs[i] != 0 and signs[i + 1] != 0 and signs[i] != signs[i + 1]:
            return i + 1  # index into `values`
    nonzero = np.nonzero(signs)[0]
    if len(nonzero) == 0:
        return None
    # Monotone curvature: the knee is the largest curvature magnitude.
    return int(np.argmax(np.abs(second))) + 1


@checked(post=lambda result, cut_sets, boxes, min_gap_ratio, **_: check_separators_clear_of_boxes(result, boxes))
def identify_visual_delimiters(
    cut_sets: Sequence[CutSet],
    boxes: Sequence[BBox],
    min_gap_ratio: float,
    tracer: Optional[Tracer] = None,
    orientation: str = "",
) -> List[CutSet]:
    """Algorithm 1: the subset of ``cut_sets`` acting as separators.

    Parameters
    ----------
    cut_sets:
        Interior consecutive-valid-cut sets of the area (one
        orientation at a time).
    boxes:
        Bounding boxes of the area's textual elements.
    min_gap_ratio:
        Physical floor: a delimiter's span must be at least this
        multiple of the area's max element height.
    tracer / orientation:
        When a tracer with tracing enabled is supplied, one
        ``cut.decision`` event is emitted per candidate cut set (in
        topological order) carrying its score, the running prefix
        correlation, and the verdict with its reason.
    """
    if not cut_sets or not boxes:
        return []
    max_h = _max_height(boxes)
    floor = min_gap_ratio * max_h

    scored = score_cut_sets(cut_sets, boxes)

    by_width = sorted(scored, key=lambda s: -s.normalized_width)
    head = by_width
    if len(by_width) >= 3:
        widths = [s.normalized_width for s in by_width]
        drops = [widths[i] - widths[i + 1] for i in range(len(widths) - 1)]
        k = int(np.argmax(drops))
        significant = widths[k] >= 1.5 * widths[k + 1] + 1e-9
        # Truncate at the inflection only when the narrow mode is
        # plausibly ordinary spacing; a population of uniformly wide
        # separators (a form's row gaps) has no meaningful inflection.
        tail_is_spacing = by_width[k + 1].cut_set.span_units < 1.25 * floor
        if significant and tail_is_spacing:
            head = by_width[: k + 1]

    accepted = [s.cut_set for s in head if s.cut_set.span_units >= floor]

    if tracer is not None and tracer.enabled:
        # Correlation scan (pseudocode lines 7–11) — diagnostic only:
        # the decision above keys on the sorted width curve, so the
        # O(n²) scan runs only when a tracer consumes it.
        correlations = prefix_correlations(scored)
        head_ids = {id(s) for s in head}
        ordered = sorted(scored, key=lambda s: s.cut_set.start_position()[::-1])
        for j, s in enumerate(ordered):
            if s.cut_set.span_units < floor:
                reason = "below_floor"
            elif id(s) not in head_ids:
                reason = "inflection_tail"
            else:
                reason = "delimiter"
            tracer.event(
                "cut.decision",
                orientation=orientation,
                position=round(float(s.cut_set.mid_units), 3),
                span_units=round(float(s.cut_set.span_units), 3),
                normalized_width=round(float(s.normalized_width), 4),
                correlation=round(float(correlations[j - 1]), 4) if j >= 1 else 0.0,
                floor=round(float(floor), 3),
                accepted=reason == "delimiter",
                reason=reason,
            )

    return accepted
