"""Lexico-syntactic patterns (§5.2.1, Tables 3 and 4).

Two pattern sources:

* **Curated** — the compiled pattern library exactly as Tables 3 and 4
  state them ("noun phrase with valid geocode tags", "verb phrase with
  captain/create/reflexive_appearance verb-senses", RFC-5322 email
  regex, ...).  This is what the benches run.
* **Mined** — patterns learned from the holdout corpus by maximal
  frequent subtree mining over annotated parse chunks (the distant
  supervision path).  Mined patterns compile to containment matchers
  over a block's parse tree; tests verify they recover the curated
  behaviour.

A pattern, given a block's transcription, returns zero or more
:class:`PatternMatch` spans.  ``scope="block"`` patterns match the
block as a whole (titles, descriptions); ``scope="chunk"`` patterns
return sub-spans (times, addresses, phones, ...).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.mining import MiningTree, contains_subtree, decode_tree, encode_tree
from repro.mining.treeminer import FrequentPattern, mine_maximal_subtrees
from repro.nlp import hypernyms, verbnet
from repro.nlp.chunker import Chunk, chunk, find_svo
from repro.nlp.geocode import recognize_addresses
from repro.nlp.ner import EMAIL_RE, MONEY_RE, PHONE_RE, recognize_entities
from repro.nlp.parse import ParseNode, parse_sentence
from repro.nlp.timex import recognize_timex
from repro.nlp.fuzzy import repair_ocr_text
from repro.nlp.tokenizer import normalize_text, words


@dataclass(frozen=True)
class PatternMatch:
    """One pattern hit inside a block transcription."""

    text: str
    start: int
    end: int
    strength: float = 1.0  # pattern-level confidence in [0, 1]


MatcherFn = Callable[[str], List[PatternMatch]]


@dataclass(frozen=True)
class SyntacticPattern:
    """A named pattern with its matcher."""

    name: str
    matcher: MatcherFn
    scope: str = "chunk"  # "chunk" | "block"

    def find(self, text: str) -> List[PatternMatch]:
        # Cleaning before parsing (§5.2): normalise, then repair the
        # common OCR glyph confusions (length-preserving, so match
        # spans remain valid offsets into the repaired text).
        text = repair_ocr_text(normalize_text(text))
        if not text:
            return []
        matches = self.matcher(text)
        if self.scope == "block" and matches:
            # Block-scope patterns yield a single whole-block match with
            # the strongest sub-evidence.
            strength = max(m.strength for m in matches)
            return [PatternMatch(text, 0, len(text), strength)]
        return matches


# ----------------------------------------------------------------------
# Chunk-level matchers
# ----------------------------------------------------------------------
def _match_regex(pattern: "re.Pattern[str]", strength: float = 0.95) -> MatcherFn:
    def matcher(text: str) -> List[PatternMatch]:
        return [
            PatternMatch(m.group(0), m.start(), m.end(), strength)
            for m in pattern.finditer(text)
        ]

    return matcher


def _match_timex(text: str) -> List[PatternMatch]:
    """Noun phrases with valid TIMEX3 tags (Table 3, Event Time).

    Adjacent temporal spans (date + clock time) coalesce into one match,
    because the annotated entity is the full "when" expression.
    """
    spans = recognize_timex(text)
    if not spans:
        return []
    merged: List[List] = [[spans[0].start, spans[0].end]]
    for t in spans[1:]:
        gap = text[merged[-1][1] : t.start]
        if len(gap) <= 12 and not any(ch.isalpha() and ch not in "atonmp,-" for ch in gap.lower()):
            merged[-1][1] = t.end
        elif len(gap.split()) <= 2:
            merged[-1][1] = t.end
        else:
            merged.append([t.start, t.end])
    return [PatternMatch(text[a:b], a, b, 0.9) for a, b in merged]


def _match_geocode(text: str) -> List[PatternMatch]:
    """Noun phrases with valid geocode tags (Tables 3/4)."""
    return [
        PatternMatch(g.text, g.start, g.end, g.confidence)
        for g in recognize_addresses(text)
        if g.is_valid
    ]


_PLACE_LEADS = ("venue", "location", "where", "at")


def _match_place(text: str) -> List[PatternMatch]:
    """Event Place: geocoded NPs, with a venue-line fallback.

    Transcription noise can break the address grammar; the holdout's
    fixed-format pages also teach the surface pattern "Venue: <venue
    word> ..." which survives noise, so a venue-lead line with a venue
    gazetteer word matches at reduced strength.
    """
    matches = _match_geocode(text)
    if matches:
        return matches
    from repro.nlp import gazetteers as gaz
    from repro.nlp.fuzzy import edit_distance

    first = text.split(":", 1)[0].strip().lower()
    has_lead = any(edit_distance(first, lead, 1) <= 1 for lead in _PLACE_LEADS)
    ws = set(words(text))
    # Venue words matched modulo one OCR edit ("librory" ≈ "library").
    has_venue_word = bool(ws & gaz.VENUE_WORDS) or any(
        len(w) >= 5 and any(
            abs(len(w) - len(v)) <= 1 and edit_distance(w, v, 1) <= 1
            for v in gaz.VENUE_WORDS
        )
        for w in ws
    )
    has_digits = any(ch.isdigit() for ch in text)
    if has_venue_word and (has_lead or has_digits):
        start = text.find(":") + 1 if has_lead and ":" in text else 0
        span = text[start:].strip()
        offset = text.find(span)
        return [PatternMatch(span, offset, offset + len(span), 0.6)]
    return []


def _match_person_org_ngram(text: str) -> List[PatternMatch]:
    """Bigram/trigram of NEs with Person/Organization tags (Table 4)."""
    out = []
    for e in recognize_entities(text):
        if e.label not in ("PERSON", "ORGANIZATION"):
            continue
        n_words = len(e.text.split())
        if 2 <= n_words <= 4:
            out.append(PatternMatch(e.text, e.start, e.end, e.confidence))
    return out


def _match_organizer(text: str) -> List[PatternMatch]:
    """Table 3, Event Organizer: (1) verb phrase with captain / create /
    reflexive_appearance senses, (2) NP with Person/Organization NEs.

    A qualifying verb phrase promotes the Person/Org NE that follows it
    ("hosted **by the Acme Society**"); a bare Person/Org NE matches
    with lower strength.
    """
    chunks = chunk(text)
    entities = [
        e for e in recognize_entities(text) if e.label in ("PERSON", "ORGANIZATION")
    ]
    out: List[PatternMatch] = []
    organizer_vp_ends: List[int] = []
    for c in chunks:
        if c.label != "VP":
            continue
        verbs = [t.text for t, tag in c.tokens if tag.startswith("VB") or tag == "MD"]
        if verbnet.any_has_sense(verbs, verbnet.ORGANIZER_SENSES):
            organizer_vp_ends.append(c.end)
    # A place-shaped line (geocoded address / venue line) is not an
    # organizer mention: unless an organizer verb phrase explicitly
    # promotes an entity there, its Person/Org NEs are venue names.
    is_place_line = bool(_match_place(text))
    for e in entities:
        promoted = any(0 <= e.start - end <= 30 for end in organizer_vp_ends)
        if is_place_line and not promoted:
            continue
        strength = min(0.95, e.confidence + (0.35 if promoted else 0.0))
        out.append(PatternMatch(e.text, e.start, e.end, strength))
    return out


def _has_modified_np(chunks: Sequence[Chunk]) -> bool:
    return any(c.label == "NP" and c.has_modifier() for c in chunks)


_TIME_LEADS_FOR_TITLE = ("date", "when", "time", "schedule")


def _match_title_evidence(text: str) -> List[PatternMatch]:
    """Table 3, Event Title: verb phrase, NP with CD/JJ modifiers, or
    SVO — learned from short holdout titles, which also teach what a
    title is *not*: no sentence punctuation, few function words, no
    organizer-verb lead, no schedule lead."""
    from repro.nlp.fuzzy import edit_distance
    from repro.nlp.tokenizer import STOPWORDS

    ws = words(text)
    token_count = len(ws)
    if not 2 <= token_count <= 12:
        return []
    if ". " in text:
        return []  # running sentences are description material
    stop_ratio = sum(1 for w in ws if w in STOPWORDS) / token_count
    if stop_ratio > 0.35:
        return []
    first = ws[0]
    if any(edit_distance(first, lead, 1) <= 1 for lead in _TIME_LEADS_FOR_TITLE):
        return []
    chunks = chunk(text)
    for c in chunks:
        if c.label == "VP" and verbnet.any_has_sense(
            [t.text for t, tag in c.tokens if tag.startswith("VB")],
            verbnet.ORGANIZER_SENSES,
        ):
            return []  # an organizer line, not a title
    strength = 0.0
    if _has_modified_np(chunks):
        strength = max(strength, 0.8)
    if any(
        c.label == "NP" and sum(1 for t in c.tags if t in ("NNP", "NNPS")) >= 2
        for c in chunks
    ):
        # Proper-noun titles: the tagger reads their textual modifiers
        # ("Midnight", "Grand") as NNP, equivalent evidence to JJ.
        strength = max(strength, 0.75)
    if any(c.label == "VP" for c in chunks):
        strength = max(strength, 0.7)
    if find_svo(chunks):
        strength = max(strength, 0.75)
    if any(c.label == "NP" for c in chunks):
        strength = max(strength, 0.5)
    # Blocks dominated by temporal/address/contact surface are not
    # title-shaped, whatever their chunks look like.
    claimed = sum(t.end - t.start for t in recognize_timex(text))
    claimed += sum(g.end - g.start for g in recognize_addresses(text) if g.is_valid)
    if claimed > 0.4 * max(len(text), 1):
        return []
    if PHONE_RE.search(text) or EMAIL_RE.search(text) or MONEY_RE.search(text):
        return []
    # Venue/address-shaped blocks (venue gazetteer word next to street
    # numbers) are place lines, not titles, even when OCR noise broke
    # the geocode grammar above.
    from repro.nlp import gazetteers as gaz

    ws = set(words(text))
    if (ws & gaz.VENUE_WORDS or ws & gaz.STREET_SUFFIXES) and any(ch.isdigit() for ch in text):
        return []
    if strength <= 0:
        return []
    return [PatternMatch(text, 0, len(text), strength)]


def _match_description_evidence(text: str) -> List[PatternMatch]:
    """Table 3, Event Description: SVO or VP or modified NP, over a
    verbose block (descriptions are full sentences)."""
    token_count = len(words(text))
    if token_count < 12:
        return []
    chunks = chunk(text)
    strength = 0.0
    if find_svo(chunks):
        strength = max(strength, 0.85)
    if any(c.label == "VP" for c in chunks):
        strength = max(strength, 0.75)
    if _has_modified_np(chunks):
        strength = max(strength, 0.6)
    if strength <= 0:
        return []
    return [PatternMatch(text, 0, len(text), strength)]


def _match_property_size(text: str) -> List[PatternMatch]:
    """Table 4, Property Size: (1) NP with CD/JJ modifiers and (2) noun
    tags with measure/structure/estate hypernym senses."""
    out: List[PatternMatch] = []
    for c in chunk(text):
        if c.label != "NP":
            continue
        has_cd = "CD" in c.tags
        senses = hypernyms.any_has_sense(c.word_texts(), ("measure", "structure"))
        if has_cd and senses:
            out.append(PatternMatch(c.text, c.start, c.end, 0.9))
        elif has_cd and c.has_modifier():
            # numeric NP without a size-word — weak evidence
            if any(w in ("sqft", "sq", "ft", "acres", "acre", "beds", "baths", "feet") for w in c.word_texts()):
                out.append(PatternMatch(c.text, c.start, c.end, 0.85))
    # Merge adjacent size NPs ("4 beds" "," "2 baths") into one span.
    merged: List[PatternMatch] = []
    for m in sorted(out, key=lambda m: m.start):
        if merged and m.start - merged[-1].end <= 3:
            prev = merged.pop()
            merged.append(
                PatternMatch(
                    text[prev.start : m.end], prev.start, m.end, max(prev.strength, m.strength)
                )
            )
        else:
            merged.append(m)
    return merged


def _match_property_description(text: str) -> List[PatternMatch]:
    """Table 4, Property Description: property-type mentions plus
    essential details — a verbose block carrying estate vocabulary."""
    token_count = len(words(text))
    if token_count < 10:
        return []
    ws = words(text)
    estate_hits = sum(
        1 for w in ws if hypernyms.any_has_sense([w], ("estate", "structure"))
    )
    if estate_hits == 0:
        return []
    strength = min(0.5 + 0.1 * estate_hits, 0.9)
    return [PatternMatch(text, 0, len(text), strength)]


# ----------------------------------------------------------------------
# The curated pattern library (Tables 3 and 4, compiled)
# ----------------------------------------------------------------------
CURATED_PATTERNS: Dict[str, SyntacticPattern] = {
    # --- D2 (Table 3) ---
    "event_title": SyntacticPattern("vp-or-modified-np-or-svo", _match_title_evidence, "block"),
    "event_place": SyntacticPattern("np-with-geocode-or-venue-line", _match_place, "chunk"),
    "event_time": SyntacticPattern("np-with-timex3", _match_timex, "chunk"),
    "event_organizer": SyntacticPattern("organizer-vp-or-person-org-np", _match_organizer, "chunk"),
    "event_description": SyntacticPattern("svo-or-vp-or-modified-np", _match_description_evidence, "block"),
    # --- D3 (Table 4) ---
    "broker_name": SyntacticPattern("person-org-ngram", _match_person_org_ngram, "chunk"),
    "broker_phone": SyntacticPattern("phone-regex", _match_regex(PHONE_RE), "chunk"),
    "broker_email": SyntacticPattern("rfc5322-email-regex", _match_regex(EMAIL_RE), "chunk"),
    "property_address": SyntacticPattern("np-with-geocode", _match_geocode, "chunk"),
    "property_size": SyntacticPattern("modified-np-with-size-senses", _match_property_size, "chunk"),
    "property_description": SyntacticPattern("property-type-and-details", _match_property_description, "block"),
}


def curated_pattern_for(entity_type: str) -> SyntacticPattern:
    if entity_type not in CURATED_PATTERNS:
        raise KeyError(f"no curated pattern for entity {entity_type!r}")
    return CURATED_PATTERNS[entity_type]


# ----------------------------------------------------------------------
# Mined patterns (distant supervision path)
# ----------------------------------------------------------------------
def mine_entity_patterns(
    holdout_texts: Sequence[str],
    min_support_fraction: float = 0.25,
    max_nodes: int = 6,
    max_trees: int = 120,
    tree_source: str = "chunks",
) -> List[FrequentPattern]:
    """Learn maximal frequent subtrees from holdout entries.

    Each entry is parsed into a tree — the annotated chunk tree of
    :func:`repro.nlp.parse.parse_sentence` (default) or the dependency
    tree of :func:`repro.nlp.dependency.dependency_mining_tree`
    (``tree_source="dependency"``, the §5.2.1 reading "frequent
    subtrees within the dependency trees") — and the maximal frequent
    subtrees across entries are the entity's syntactic patterns.
    """
    texts = list(holdout_texts)[:max_trees]
    if not texts:
        return []
    if tree_source == "dependency":
        from repro.nlp.dependency import dependency_mining_tree

        trees = [dependency_mining_tree(normalize_text(t)) for t in texts]
    elif tree_source == "chunks":
        trees = [decode_tree(encode_tree(parse_sentence(normalize_text(t)))) for t in texts]
    else:
        raise ValueError(f"unknown tree_source {tree_source!r}")
    min_support = max(2, int(round(min_support_fraction * len(trees))))
    mined = mine_maximal_subtrees(trees, min_support, max_nodes)
    # Patterns made only of structural labels (bare S/NP/O chains with no
    # tag or annotation content) match everything; keep informative ones.
    informative = [
        p
        for p in mined
        if any(
            label not in ("S", "NP", "VP", "O", "-1", "DT", "IN", "PUNCT")
            for label in p.encoding
        )
    ]
    return informative or mined


def compile_mined_pattern(
    mined: Sequence[FrequentPattern],
    scope: str = "chunk",
    min_fraction: float = 0.34,
    max_patterns: int = 150,
) -> SyntacticPattern:
    """Compile mined subtrees into a matcher.

    Candidate spans are the chunks of the text's parse tree: a chunk
    matches when at least ``min_fraction`` of the mined pattern trees
    embed (Zaki's embedded containment) into a miniature ``S → chunk``
    tree; strength is that fraction.  When no single chunk reaches the
    threshold, the whole tree is tested (whole-entry patterns such as
    titles/descriptions), yielding a block-level match.
    """
    ranked = sorted(mined, key=lambda p: (-p.support, -p.size))[:max_patterns]
    trees: List[MiningTree] = [p.tree() for p in ranked]

    def fraction_for(tree: MiningTree) -> float:
        if not trees:
            return 0.0
        hits = sum(1 for t in trees if contains_subtree(tree, t, embedded=True))
        return hits / len(trees)

    def matcher(text: str) -> List[PatternMatch]:
        if not trees:
            return []
        parsed = parse_sentence(text)
        children = list(parsed.children)
        out: List[PatternMatch] = []
        # Mined patterns may span several adjacent chunks ("Mar 4" +
        # "9:15 am"); scan windows of consecutive chunks, smallest
        # matching window first.
        for width in (1, 2, 3, 4):
            for i in range(0, max(len(children) - width + 1, 0)):
                window = children[i : i + width]
                tokens = [
                    n.token for c in window for n in c.walk() if n.token is not None
                ]
                if not tokens:
                    continue
                mini = ParseNode("S", list(window))
                fraction = fraction_for(decode_tree(encode_tree(mini)))
                if fraction >= min_fraction:
                    start = min(t.start for t in tokens)
                    end = max(t.end for t in tokens)
                    out.append(
                        PatternMatch(text[start:end], start, end, min(fraction, 0.95))
                    )
            if out:
                return _merge_overlapping(out, text)
        fraction = fraction_for(decode_tree(encode_tree(parsed)))
        if fraction >= min_fraction:
            return [PatternMatch(text, 0, len(text), min(fraction, 0.95))]
        return []

    return SyntacticPattern("mined-frequent-subtrees", matcher, scope)


def _merge_overlapping(matches: List[PatternMatch], text: str) -> List[PatternMatch]:
    """Coalesce overlapping/adjacent window matches into maximal spans."""
    merged: List[PatternMatch] = []
    for m in sorted(matches, key=lambda m: m.start):
        if merged and m.start <= merged[-1].end + 2:
            prev = merged.pop()
            start, end = prev.start, max(prev.end, m.end)
            merged.append(
                PatternMatch(text[start:end], start, end, max(prev.strength, m.strength))
            )
        else:
            merged.append(m)
    return merged


def learn_patterns_from_holdout(
    holdout, min_support_fraction: float = 0.25
) -> Dict[str, SyntacticPattern]:
    """Mined pattern per entity type of a holdout corpus."""
    learned: Dict[str, SyntacticPattern] = {}
    for entity_type in holdout.entity_types():
        mined = mine_entity_patterns(
            holdout.texts_for(entity_type), min_support_fraction
        )
        learned[entity_type] = compile_mined_pattern(mined)
    return learned
