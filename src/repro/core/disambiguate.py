"""Multimodal entity disambiguation (§5.3.2, Eq. 2).

When a pattern matches several blocks, the candidate closest to an
interest point in a multimodal encoding space wins.  The distance
between two visual areas ``s`` and ``c`` is

    F(s, c) = α·ΔD + β·ΔH + γ·ΔSim + ν·ΔWd,   α + β + γ + ν = 1

with ΔD the L1 distance between centroids, ΔH the height difference of
the enclosing boxes, ΔSim the *textual* term (we realise it as cosine
**dissimilarity** — Eq. 2 is a distance, so similar text must shrink
it), and ΔWd the difference of distance-normalised word densities.
Every term is normalised to [0, 1] before weighting so the weights
express the §5.3.2 trade-off directly: visually ornate corpora (D2) set
α, β, ν ≥ γ; balanced corpora (D1, D3) use α ≈ β ≈ γ ≈ ν.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.doc.layout_tree import LayoutNode
from repro.embeddings import WordEmbedding, cosine_similarity, default_embedding


@dataclass(frozen=True)
class Eq2Weights:
    """The (α, β, γ, ν) weights of Eq. 2."""

    alpha: float
    beta: float
    gamma: float
    nu: float

    def __post_init__(self) -> None:
        total = self.alpha + self.beta + self.gamma + self.nu
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"Eq. 2 weights must sum to 1 (got {total})")
        for w in (self.alpha, self.beta, self.gamma, self.nu):
            if not -1.0 <= w <= 1.0:
                raise ValueError("Eq. 2 weights must lie in [-1, 1]")

    @staticmethod
    def from_tuple(weights: Tuple[float, float, float, float]) -> "Eq2Weights":
        return Eq2Weights(*weights)


def multimodal_distance(
    s: LayoutNode,
    c: LayoutNode,
    weights: Eq2Weights,
    page_diag: float,
    embedding: Optional[WordEmbedding] = None,
) -> float:
    """Eq. 2: weighted L1 distance between two visual areas."""
    embedding = embedding or default_embedding()
    if page_diag <= 0:
        raise ValueError("page_diag must be positive")
    delta_d = s.bbox.centroid_l1_distance(c.bbox) / (2.0 * page_diag)
    max_h = max(s.bbox.h, c.bbox.h, 1.0)
    delta_h = abs(s.bbox.h - c.bbox.h) / max_h
    sim = cosine_similarity(
        embedding.embed_text(s.text()), embedding.embed_text(c.text())
    )
    delta_sim = (1.0 - sim) / 2.0
    d_s, d_c = s.word_density(), c.word_density()
    max_density = max(d_s, d_c, 1e-9)
    delta_wd = abs(d_s - d_c) / max_density
    return (
        weights.alpha * delta_d
        + weights.beta * delta_h
        + weights.gamma * delta_sim
        + weights.nu * delta_wd
    )


def distance_to_interest_points(
    candidate: LayoutNode,
    interest_points: Sequence[LayoutNode],
    weights: Eq2Weights,
    page_diag: float,
    embedding: Optional[WordEmbedding] = None,
) -> float:
    """min over interest points of Eq. 2 — the candidate's rank key."""
    if not interest_points:
        return float("inf")
    return min(
        multimodal_distance(candidate, ip, weights, page_diag, embedding)
        for ip in interest_points
    )


def rank_candidates(
    candidates: Sequence[LayoutNode],
    interest_points: Sequence[LayoutNode],
    weights: Eq2Weights,
    page_diag: float,
    embedding: Optional[WordEmbedding] = None,
) -> Sequence[int]:
    """Indices of ``candidates`` ordered best (closest) first.

    Ties preserve input (document) order.
    """
    scores = [
        distance_to_interest_points(c, interest_points, weights, page_diag, embedding)
        for c in candidates
    ]
    return sorted(range(len(candidates)), key=lambda i: (scores[i], i))
