"""VS2-Segment: the hierarchical page segmentation driver (§5.1.2).

Each iteration of the recursion, on one visual area:

1. **Explicit delimiters** — scan for consecutive valid horizontal and
   vertical cut sets on the area's whitespace grid; Algorithm 1 decides
   which are true separators; the area splits into the bands between
   them (``kind="cut"`` children).
2. **Implicit modifiers** — if no delimiter exists, cluster the area's
   atoms on Table 1 features (``kind="cluster"`` children).
3. Recurse into children until areas stop splitting.

After convergence a **semantic merging** fixpoint (Eq. 1) repairs
over-segmentation.  The leaves of the resulting tree are the logical
blocks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.contracts import (
    check_cut_sets_in_whitespace,
    check_layout_tree,
    checked,
    contracts_enabled,
)
from repro.core.clustering import cluster_elements
from repro.core.config import SegmentConfig
from repro.core.delimiters import identify_visual_delimiters
from repro.core.merging import semantic_merge
from repro.doc import Document
from repro.doc.elements import AtomicElement
from repro.doc.layout_tree import LayoutNode, LayoutTree
from repro.embeddings import WordEmbedding
from repro.geometry import BBox, OccupancyGrid, enclosing_bbox
from repro.geometry.cuts import CutSet, interior_cut_sets
from repro.instrument import PipelineMetrics
from repro.resilience.faults import fault_site
from repro.trace import NULL_TRACER, Tracer


class VS2Segmenter:
    """Segments a document into its layout tree / logical blocks.

    ``metrics`` records the ``segment.cuts`` / ``segment.cluster`` /
    ``segment.merge`` sub-stages; the pipeline passes its own
    accumulator so they nest under its top-level ``segment`` timing.
    ``tracer`` receives the same sub-stages as spans plus the
    per-decision events (``cut.decision``, ``merge.decision``).
    """

    def __init__(
        self,
        config: Optional[SegmentConfig] = None,
        embedding: Optional[WordEmbedding] = None,
        metrics: Optional[PipelineMetrics] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.config = config or SegmentConfig()
        self.embedding = embedding
        self.metrics = metrics if metrics is not None else PipelineMetrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @checked(post=lambda tree, self, doc, **kw: check_layout_tree(tree))
    def segment(self, doc: Document, semantic_merging: Optional[bool] = None) -> LayoutTree:
        """Build the layout tree of ``doc``.

        The input should be the *observed* document (OCR output view)
        when simulating the full pipeline, or the source document when
        studying segmentation in isolation.  ``semantic_merging``
        overrides ``config.use_semantic_merging`` for this call — the
        pipeline's degradation ladder uses it to retry a document
        visual-only after a semantic-merge failure.
        """
        atoms = list(doc.elements)
        if atoms:
            root_box = enclosing_bbox([a.bbox for a in atoms]).union(doc.page_bbox)
        else:
            root_box = doc.page_bbox
        root = LayoutNode(bbox=root_box, atoms=atoms, kind="root")
        self._recurse(root, depth=0)
        tree = LayoutTree(root)
        if semantic_merging is None:
            semantic_merging = self.config.use_semantic_merging
        if semantic_merging:
            with self.metrics.stage("segment.merge"), self.tracer.span(
                "segment.merge"
            ):
                semantic_merge(tree, self.config, self.embedding, tracer=self.tracer)
        return tree

    def logical_blocks(self, doc: Document) -> List[LayoutNode]:
        return self.segment(doc).logical_blocks()

    def block_bboxes(self, doc: Document) -> List[BBox]:
        """Tight boxes of text-bearing logical blocks (the proposals
        Table 5 evaluates)."""
        boxes = []
        for block in self.logical_blocks(doc):
            if block.text_atoms:
                boxes.append(enclosing_bbox([a.bbox for a in block.text_atoms]))
        return boxes

    # ------------------------------------------------------------------
    # Recursion
    # ------------------------------------------------------------------
    def _recurse(self, node: LayoutNode, depth: int) -> None:
        if depth >= self.config.max_depth:
            return
        if len(node.atoms) < self.config.min_atoms_to_split:
            return

        with self.metrics.stage("segment.cuts"), self.tracer.span(
            "segment.cuts", depth=depth
        ):
            fault_site("segment.cuts")
            groups = self._split_by_cuts(node)
        kind = "cut"
        if groups is None and self.config.use_visual_clustering:
            with self.metrics.stage("segment.cluster"), self.tracer.span(
                "segment.cluster", depth=depth
            ) as sp:
                groups = self._split_by_clustering(node)
                sp.attrs["clusters"] = len(groups) if groups else 0
            kind = "cluster"
        if not groups or len(groups) < 2:
            return
        for group in groups:
            child = LayoutNode(
                bbox=enclosing_bbox([a.bbox for a in group]),
                atoms=list(group),
                kind=kind,
            )
            node.add_child(child)
        for child in node.children:
            if len(child.atoms) < len(node.atoms):
                self._recurse(child, depth + 1)

    # ------------------------------------------------------------------
    # Explicit delimiters
    # ------------------------------------------------------------------
    def _split_by_cuts(self, node: LayoutNode) -> Optional[List[List[AtomicElement]]]:
        """Split the area at its accepted visual delimiters.

        Both orientations are scanned; the orientation holding the
        widest accepted delimiter wins this iteration (the other one is
        found again at the next recursion level).
        """
        frame = node.bbox
        # Atom boxes rebased to the frame: the grid and every cut
        # position live in frame-local coordinates.
        local_boxes = [a.bbox.translate(-frame.x, -frame.y) for a in node.atoms]
        grid = OccupancyGrid.from_bboxes(
            local_boxes,
            max(frame.w, self.config.cell),
            max(frame.h, self.config.cell),
            self.config.cell,
        )
        text_boxes = [a.bbox.translate(-frame.x, -frame.y) for a in node.atoms if a.is_textual]
        ref_boxes = text_boxes or local_boxes

        h_sets = interior_cut_sets(grid, "horizontal")
        v_sets = interior_cut_sets(grid, "vertical")
        if contracts_enabled():
            check_cut_sets_in_whitespace(grid, h_sets + v_sets)
        horizontal = identify_visual_delimiters(
            h_sets, ref_boxes, self.config.min_h_gap_ratio,
            tracer=self.tracer, orientation="horizontal",
        )
        vertical = identify_visual_delimiters(
            v_sets, ref_boxes, self.config.min_v_gap_ratio,
            tracer=self.tracer, orientation="vertical",
        )
        if not horizontal and not vertical:
            return None

        best_h = max((s.span_units for s in horizontal), default=0.0)
        best_v = max((s.span_units for s in vertical), default=0.0)
        if best_h >= best_v:
            orientation, separators = "horizontal", horizontal
        else:
            orientation, separators = "vertical", vertical

        groups = self._partition_by_separators(node.atoms, frame, separators, orientation)
        if groups is not None and len(groups) < 2:
            return None
        return groups

    @staticmethod
    def _partition_by_separators(
        atoms: Sequence[AtomicElement],
        frame: BBox,
        separators: Sequence[CutSet],
        orientation: str,
    ) -> Optional[List[List[AtomicElement]]]:
        """Assign atoms to the bands between separator centre lines."""
        if not separators:
            return None
        lines = sorted(separators, key=lambda s: s.mid_units)

        def band_of(a: AtomicElement) -> int:
            cx, cy = a.bbox.centroid
            if orientation == "horizontal":
                coordinate, crossing = cy - frame.y, cx - frame.x
            else:
                coordinate, crossing = cx - frame.x, cy - frame.y
            band = 0
            for line in lines:
                if coordinate > line.line_value_at(crossing):
                    band += 1
            return band

        groups: dict = {}
        for atom in atoms:
            groups.setdefault(band_of(atom), []).append(atom)
        ordered = [groups[k] for k in sorted(groups)]
        return [g for g in ordered if g]

    # ------------------------------------------------------------------
    # Implicit modifiers
    # ------------------------------------------------------------------
    def _split_by_clustering(self, node: LayoutNode) -> Optional[List[List[AtomicElement]]]:
        clusters = cluster_elements(
            node.atoms, node.bbox, font_type_weight=self.config.font_type_weight
        )
        if len(clusters) < 2:
            return None
        return clusters
