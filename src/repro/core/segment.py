"""VS2-Segment: the hierarchical page segmentation driver (§5.1.2).

Each iteration of the recursion, on one visual area:

1. **Explicit delimiters** — scan for consecutive valid horizontal and
   vertical cut sets on the area's whitespace grid; Algorithm 1 decides
   which are true separators; the area splits into the bands between
   them (``kind="cut"`` children).
2. **Implicit modifiers** — if no delimiter exists, cluster the area's
   atoms on Table 1 features (``kind="cluster"`` children).
3. Recurse into children until areas stop splitting.

After convergence a **semantic merging** fixpoint (Eq. 1) repairs
over-segmentation.  The leaves of the resulting tree are the logical
blocks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.contracts import (
    check_cut_sets_in_whitespace,
    check_layout_tree,
    checked,
    contracts_enabled,
)
from repro.core.clustering import cluster_elements
from repro.core.config import SegmentConfig
from repro.core.delimiters import identify_visual_delimiters
from repro.core.merging import semantic_merge
from repro.doc import Document
from repro.doc.elements import AtomicElement
from repro.doc.layout_tree import LayoutNode, LayoutTree
from repro.embeddings import WordEmbedding
from repro.geometry import BBox, OccupancyGrid, enclosing_bbox
from repro.geometry.cuts import CutSet, interior_cut_sets
from repro.geometry.profiles import ProfileStore, RegionProfile
from repro.instrument import PipelineMetrics
from repro.resilience.faults import fault_site
from repro.trace import NULL_TRACER, Tracer


class VS2Segmenter:
    """Segments a document into its layout tree / logical blocks.

    ``metrics`` records the ``segment.cuts`` / ``segment.cluster`` /
    ``segment.merge`` sub-stages; the pipeline passes its own
    accumulator so they nest under its top-level ``segment`` timing.
    ``tracer`` receives the same sub-stages as spans plus the
    per-decision events (``cut.decision``, ``merge.decision``).
    """

    def __init__(
        self,
        config: Optional[SegmentConfig] = None,
        embedding: Optional[WordEmbedding] = None,
        metrics: Optional[PipelineMetrics] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.config = config or SegmentConfig()
        self.embedding = embedding
        self.metrics = metrics if metrics is not None else PipelineMetrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Projection-profile store of the most recent :meth:`segment`
        #: call (``None`` before the first call or with ``fast_cuts``
        #: off); exposes window/rebuild counters for diagnostics.
        self.profiles: Optional[ProfileStore] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @checked(post=lambda tree, self, doc, **kw: check_layout_tree(tree))
    def segment(self, doc: Document, semantic_merging: Optional[bool] = None) -> LayoutTree:
        """Build the layout tree of ``doc``.

        The input should be the *observed* document (OCR output view)
        when simulating the full pipeline, or the source document when
        studying segmentation in isolation.  ``semantic_merging``
        overrides ``config.use_semantic_merging`` for this call — the
        pipeline's degradation ladder uses it to retry a document
        visual-only after a semantic-merge failure.
        """
        atoms = list(doc.elements)
        if atoms:
            root_box = enclosing_bbox([a.bbox for a in atoms]).union(doc.page_bbox)
        else:
            root_box = doc.page_bbox
        root = LayoutNode(bbox=root_box, atoms=atoms, kind="root")
        # One ProfileStore per segmentation: applies the child-window
        # memoisation contract and counts window reuses vs rebuilds.
        self.profiles = ProfileStore() if self.config.fast_cuts else None
        self._recurse(root, depth=0)
        tree = LayoutTree(root)
        if semantic_merging is None:
            semantic_merging = self.config.use_semantic_merging
        if semantic_merging:
            with self.metrics.stage("segment.merge"), self.tracer.span(
                "segment.merge"
            ):
                semantic_merge(tree, self.config, self.embedding, tracer=self.tracer)
        return tree

    def logical_blocks(self, doc: Document) -> List[LayoutNode]:
        return self.segment(doc).logical_blocks()

    def block_bboxes(self, doc: Document) -> List[BBox]:  # exc: boundary - public API; faults propagate unless run supervised
        """Tight boxes of text-bearing logical blocks (the proposals
        Table 5 evaluates)."""
        boxes = []
        for block in self.logical_blocks(doc):
            if block.text_atoms:
                boxes.append(enclosing_bbox([a.bbox for a in block.text_atoms]))
        return boxes

    # ------------------------------------------------------------------
    # Recursion
    # ------------------------------------------------------------------
    def _recurse(
        self,
        node: LayoutNode,
        depth: int,
        parent_profile: Optional[RegionProfile] = None,
        parent_frame: Optional[BBox] = None,
    ) -> None:
        if depth >= self.config.max_depth:
            return
        if len(node.atoms) < self.config.min_atoms_to_split:
            return

        with self.metrics.stage("segment.cuts"), self.tracer.span(
            "segment.cuts", depth=depth
        ):
            fault_site("segment.cuts")
            groups, profile = self._split_by_cuts(node, parent_profile, parent_frame)
        kind = "cut"
        if groups is None and self.config.use_visual_clustering:
            with self.metrics.stage("segment.cluster"), self.tracer.span(
                "segment.cluster", depth=depth
            ) as sp:
                groups = self._split_by_clustering(node)
                sp.attrs["clusters"] = len(groups) if groups else 0
            kind = "cluster"
        if not groups or len(groups) < 2:
            return
        for group in groups:
            child = LayoutNode(
                bbox=enclosing_bbox([a.bbox for a in group]),
                atoms=list(group),
                kind=kind,
            )
            node.add_child(child)
        for child in node.children:
            if len(child.atoms) < len(node.atoms):
                self._recurse(child, depth + 1, profile, node.bbox)

    # ------------------------------------------------------------------
    # Explicit delimiters
    # ------------------------------------------------------------------
    def _split_by_cuts(
        self,
        node: LayoutNode,
        parent_profile: Optional[RegionProfile] = None,
        parent_frame: Optional[BBox] = None,
    ) -> Tuple[Optional[List[List[AtomicElement]]], Optional[RegionProfile]]:
        """Split the area at its accepted visual delimiters.

        Both orientations are scanned; the orientation holding the
        widest accepted delimiter wins this iteration (the other one is
        found again at the next recursion level).

        Returns ``(groups, profile)`` — the region's projection profile
        rides back up so the recursion can offer it to child regions
        (which window into it when the memoisation contract holds, see
        :mod:`repro.geometry.profiles`).  ``profile`` is ``None`` on
        the naive path (``config.fast_cuts`` off).
        """
        frame = node.bbox
        # Atom boxes rebased to the frame: the grid and every cut
        # position live in frame-local coordinates.
        local_boxes = [a.bbox.translate(-frame.x, -frame.y) for a in node.atoms]
        grid = OccupancyGrid.from_bboxes(
            local_boxes,
            max(frame.w, self.config.cell),
            max(frame.h, self.config.cell),
            self.config.cell,
        )
        profile = None
        if self.profiles is not None:
            profile = self.profiles.profile_for(grid, frame, parent_profile, parent_frame)
        text_boxes = [a.bbox.translate(-frame.x, -frame.y) for a in node.atoms if a.is_textual]
        ref_boxes = text_boxes or local_boxes

        h_sets = interior_cut_sets(grid, "horizontal", profile=profile)
        v_sets = interior_cut_sets(grid, "vertical", profile=profile)
        if contracts_enabled():
            check_cut_sets_in_whitespace(grid, h_sets + v_sets)
        horizontal = identify_visual_delimiters(
            h_sets, ref_boxes, self.config.min_h_gap_ratio,
            tracer=self.tracer, orientation="horizontal",
        )
        vertical = identify_visual_delimiters(
            v_sets, ref_boxes, self.config.min_v_gap_ratio,
            tracer=self.tracer, orientation="vertical",
        )
        if not horizontal and not vertical:
            return None, profile

        best_h = max((s.span_units for s in horizontal), default=0.0)
        best_v = max((s.span_units for s in vertical), default=0.0)
        if best_h >= best_v:
            orientation, separators = "horizontal", horizontal
        else:
            orientation, separators = "vertical", vertical

        groups = self._partition_by_separators(node.atoms, frame, separators, orientation)
        if groups is not None and len(groups) < 2:
            return None, profile
        return groups, profile

    @staticmethod
    def _partition_by_separators(
        atoms: Sequence[AtomicElement],
        frame: BBox,
        separators: Sequence[CutSet],
        orientation: str,
    ) -> Optional[List[List[AtomicElement]]]:
        """Assign atoms to the bands between separator centre lines.

        The band index of an atom is how many centre lines lie above
        (left of) its centroid — evaluated as one vectorised
        comparison against the hoisted ``mid + slope·t`` line values
        (bitwise the same predicate as :meth:`CutSet.line_value_at`
        per atom, just not recomputed per pair).
        """
        if not separators:
            return None
        lines = sorted(separators, key=lambda s: s.mid_units)
        mids = np.array([line.mid_units for line in lines])
        slopes = np.array([line.slope for line in lines])
        centroids = np.array([a.bbox.centroid for a in atoms])
        if orientation == "horizontal":
            coordinate = centroids[:, 1] - frame.y
            crossing = centroids[:, 0] - frame.x
        else:
            coordinate = centroids[:, 0] - frame.x
            crossing = centroids[:, 1] - frame.y
        bands = (
            coordinate[:, None] > mids[None, :] + slopes[None, :] * crossing[:, None]
        ).sum(axis=1)

        groups: dict = {}
        for atom, band in zip(atoms, bands):
            groups.setdefault(int(band), []).append(atom)
        ordered = [groups[k] for k in sorted(groups)]
        return [g for g in ordered if g]

    # ------------------------------------------------------------------
    # Implicit modifiers
    # ------------------------------------------------------------------
    def _split_by_clustering(self, node: LayoutNode) -> Optional[List[List[AtomicElement]]]:
        clusters = cluster_elements(
            node.atoms, node.bbox, font_type_weight=self.config.font_type_weight
        )
        if len(clusters) < 2:
            return None
        return clusters
