"""The end-to-end VS2 pipeline (Fig. 2).

Input: a visually rich document.  Steps: clean (skew correction, §1's
Example 1.1) and transcribe (simulated OCR), segment into logical
blocks (VS2-Segment), search-and-select the named entities
(VS2-Select).  Output: key-value extractions, localised in the
*original* document frame so they compare directly against annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import VS2Config
from repro.core.segment import VS2Segmenter
from repro.core.select import Extraction, VS2Selector
from repro.doc import Document
from repro.doc.layout_tree import LayoutNode, LayoutTree
from repro.embeddings import WordEmbedding, default_embedding
from repro.ocr import OcrEngine, OcrResult
from repro.ocr.deskew import deskew, rotate_back


@dataclass
class PipelineResult:
    """Everything one run produces (kept for inspection/figures).

    ``tree`` / ``blocks`` live in the cleaned (deskewed) frame;
    ``extractions`` are mapped back to the original frame.
    """

    doc_id: str
    extractions: List[Extraction]
    tree: LayoutTree
    blocks: List[LayoutNode]
    ocr: OcrResult
    observed: Document
    skew_angle: float

    def as_key_values(self) -> Dict[str, str]:
        """The paper's deliverable: a loadable list of key-value pairs."""
        return {e.entity_type: e.text for e in self.extractions}


class VS2Pipeline:
    """clean → OCR → VS2-Segment → VS2-Select, wired per dataset."""

    def __init__(
        self,
        dataset: str,
        config: Optional[VS2Config] = None,
        ocr_engine: Optional[OcrEngine] = None,
        embedding: Optional[WordEmbedding] = None,
    ):
        self.dataset = dataset.upper()
        self.config = config or VS2Config.for_dataset(self.dataset)
        self.embedding = embedding or default_embedding()
        self.ocr = ocr_engine or OcrEngine(seed=self.config.ocr_seed)
        self.segmenter = VS2Segmenter(self.config.segment, self.embedding)
        self.selector = VS2Selector(
            self.dataset, self.config.select, embedding=self.embedding
        )

    def run(self, doc: Document) -> PipelineResult:
        """Extract every named entity of the dataset's vocabulary from
        one document.  ``doc`` ground truth is never consulted."""
        ocr = self.ocr.transcribe(doc)
        observed, angle = deskew(ocr.as_document(doc))
        tree = self.segmenter.segment(observed)
        blocks = tree.logical_blocks()
        extractions = self.selector.extract(observed, blocks)
        if angle != 0.0:
            extractions = [
                Extraction(
                    e.entity_type,
                    e.text,
                    rotate_back(e.bbox, angle, observed),
                    rotate_back(e.span_bbox, angle, observed),
                    e.score,
                )
                for e in extractions
            ]
        return PipelineResult(doc.doc_id, extractions, tree, blocks, ocr, observed, angle)

    def run_corpus(self, docs: Sequence[Document]) -> List[PipelineResult]:
        """Run the pipeline over a document collection."""
        return [self.run(doc) for doc in docs]
