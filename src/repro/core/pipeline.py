"""The end-to-end VS2 pipeline (Fig. 2).

Input: a visually rich document.  Stages, in order:

1. **clean** — simulated OCR transcription (:mod:`repro.ocr`) followed
   by skew correction (§1's Example 1.1, :mod:`repro.ocr.deskew`);
2. **VS2-Segment** — hierarchical segmentation of the cleaned view
   into logical blocks (:mod:`repro.core.segment`);
3. **VS2-Select** — distantly supervised search-and-select of the
   dataset's named entities over those blocks
   (:mod:`repro.core.select`).

Output: key-value extractions, localised in the *original* document
frame so they compare directly against annotations.

Coordinate frames
-----------------
Two frames appear throughout (``docs/ARCHITECTURE.md`` has the full
contract):

* the **original frame** — the coordinates of the input ``Document``
  exactly as authored/captured, possibly skewed;
* the **observed frame** — the deskewed OCR view the pipeline actually
  reasons in: every box produced by segmentation and selection starts
  life here.

``deskew`` maps original → observed (returning the estimated angle);
``rotate_back`` maps observed boxes → original.  The pipeline applies
``rotate_back`` to its extractions as the last step, so *callers only
ever see original-frame extractions*, while the intermediate artefacts
kept on :class:`PipelineResult` (``tree``, ``blocks``, ``observed``)
stay in the observed frame for inspection and figures.

Usage
-----
>>> from repro.core import VS2Pipeline
>>> from repro.synth import generate_corpus
>>> doc = generate_corpus("D2", n=1, seed=42)[0]
>>> result = VS2Pipeline("D2").run(doc)
>>> sorted(result.as_key_values())           # doctest: +ELLIPSIS
['event_description', 'event_organizer', ...]

Instrumentation (:mod:`repro.perf`) is always on: every run records
per-stage wall-time into :attr:`VS2Pipeline.metrics`, and an optional
:class:`~repro.perf.cache.TranscriptionCache` memoises the clean step.
For whole corpora, prefer :meth:`VS2Pipeline.run_corpus` (or
:class:`repro.perf.runner.CorpusRunner` directly) which adds process
parallelism and per-document error isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import VS2Config
from repro.core.segment import VS2Segmenter
from repro.core.select import Extraction, VS2Selector
from repro.doc import Document
from repro.doc.layout_tree import LayoutNode, LayoutTree
from repro.embeddings import WordEmbedding, default_embedding
from repro.ocr import OcrEngine, OcrResult
from repro.ocr.deskew import rotate_back
from repro.instrument import PipelineMetrics
from repro.ocr.cache import TranscriptionCache, transcribe_and_clean
from repro.resilience.faults import TransientFault
from repro.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class Degradation:
    """One rung of the degradation ladder a run had to take.

    ``stage`` is the pipeline stage that failed (``segment`` or
    ``select``); ``fallback`` names the substitute strategy that
    produced the stage's output instead (``visual_only`` merging,
    ``ner_fallback`` extraction); ``error_type`` / ``message`` describe
    the original failure.
    """

    stage: str
    fallback: str
    error_type: str
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "stage": self.stage,
            "fallback": self.fallback,
            "error_type": self.error_type,
            "message": self.message,
        }


@dataclass
class PipelineResult:
    """Everything one run produces (kept for inspection/figures).

    Field semantics — and, crucially, which coordinate frame each bbox
    lives in:

    ``doc_id``
        The input document's id (ground truth is never consulted).
    ``extractions``
        The deliverable: one :class:`~repro.core.select.Extraction` per
        resolved entity.  Both ``bbox`` (the owning logical block) and
        ``span_bbox`` (the tight box of the matched words) are in the
        **original frame** — already rotated back, comparable directly
        against the document's annotations.
    ``tree`` / ``blocks``
        The layout tree and its logical-block leaves, in the
        **observed (deskewed) frame**.  To compare a block box against
        original-frame annotations, map it with
        :func:`repro.ocr.deskew.rotate_back` using ``skew_angle`` and
        ``observed``.
    ``ocr``
        The raw :class:`~repro.ocr.OcrResult` (noisy words, *original*
        frame, pre-deskew).
    ``observed``
        The cleaned document view the pipeline reasoned over —
        deskewed OCR words, no ground truth attached.
    ``skew_angle``
        Estimated skew in degrees; ``0.0`` means the observed and
        original frames coincide (and ``extractions`` needed no
        rotation).
    ``degradations``
        The rungs of the degradation ladder this run took (empty on a
        healthy run): each records a stage failure that was absorbed by
        a documented fallback instead of failing the document.
    """

    doc_id: str
    extractions: List[Extraction]
    tree: LayoutTree
    blocks: List[LayoutNode]
    ocr: OcrResult
    observed: Document
    skew_angle: float
    degradations: List[Degradation] = field(default_factory=list)

    def as_key_values(self) -> Dict[str, str]:
        """The paper's deliverable: a loadable list of key-value pairs."""
        return {e.entity_type: e.text for e in self.extractions}


class VS2Pipeline:
    """clean → OCR → VS2-Segment → VS2-Select, wired per dataset.

    ``metrics`` (a shared :class:`~repro.perf.metrics.PipelineMetrics`)
    accumulates per-stage timings across every :meth:`run`; ``cache``
    (a :class:`~repro.perf.cache.TranscriptionCache`) memoises the
    clean step so repeated runs over the same corpus — benchmarks,
    table regenerations — transcribe each document once.
    """

    def __init__(
        self,
        dataset: str,
        config: Optional[VS2Config] = None,
        ocr_engine: Optional[OcrEngine] = None,
        embedding: Optional[WordEmbedding] = None,
        cache: Optional[TranscriptionCache] = None,
        metrics: Optional[PipelineMetrics] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.dataset = dataset.upper()
        self.config = config or VS2Config.for_dataset(self.dataset)
        self.embedding = embedding or default_embedding()
        self.ocr = ocr_engine or OcrEngine(seed=self.config.ocr_seed)
        self.cache = cache
        self.metrics = metrics or PipelineMetrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.segmenter = VS2Segmenter(
            self.config.segment, self.embedding, metrics=self.metrics,
            tracer=self.tracer,
        )
        self.selector = VS2Selector(
            self.dataset,
            self.config.select,
            embedding=self.embedding,
            metrics=self.metrics,
            tracer=self.tracer,
        )

    def run(self, doc: Document) -> PipelineResult:
        """Extract every named entity of the dataset's vocabulary from
        one document.  ``doc`` ground truth is never consulted.

        Per-stage failures degrade rather than abort where a documented
        fallback exists (the *degradation ladder*, recorded on
        :attr:`PipelineResult.degradations`): a semantic-merge failure
        falls back to visual-only segmentation; a pattern-match failure
        falls back to dictionary/NER extraction.  Transient faults are
        re-raised untouched — those belong to the supervised runner's
        retry budget, not to degradation.
        """
        degradations: List[Degradation] = []
        if self.cache is not None:
            ocr, observed, angle = self.cache.cleaned(
                self.ocr, doc, self.metrics, tracer=self.tracer
            )
        else:
            ocr, observed, angle = transcribe_and_clean(
                self.ocr, doc, self.metrics, tracer=self.tracer
            )
        with self.metrics.stage("segment") as t, self.tracer.span("segment") as sp:
            try:
                tree = self.segmenter.segment(observed)
            except Exception as exc:  # registered isolation site (RES002)
                if isinstance(exc, TransientFault):
                    raise
                self._note_degradation(
                    degradations, "segment", "visual_only", exc
                )
                tree = self.segmenter.segment(observed, semantic_merging=False)
            blocks = tree.logical_blocks()
            t.items = len(blocks)
            sp.attrs["blocks"] = len(blocks)
        with self.metrics.stage("select") as t, self.tracer.span("select") as sp:
            try:
                if self.config.select.ner_only:
                    # Proactive last rung: the caller (a serve-layer
                    # circuit breaker, an ablation) asked for NER-only
                    # extraction up front rather than after a failure.
                    extractions = self._ner_fallback(blocks)
                else:
                    extractions = self.selector.extract(observed, blocks)
            except Exception as exc:  # registered isolation site (RES002)
                if isinstance(exc, TransientFault):
                    raise
                self._note_degradation(
                    degradations, "select", "ner_fallback", exc
                )
                extractions = self._ner_fallback(blocks)
            t.items = len(extractions)
            sp.attrs["extractions"] = len(extractions)
        if angle != 0.0:
            with self.metrics.stage("rotate_back") as t, self.tracer.span(
                "rotate_back"
            ):
                t.items = len(extractions)
                extractions = [
                    Extraction(
                        e.entity_type,
                        e.text,
                        rotate_back(e.bbox, angle, observed),
                        rotate_back(e.span_bbox, angle, observed),
                        e.score,
                    )
                    for e in extractions
                ]
        return PipelineResult(
            doc.doc_id, extractions, tree, blocks, ocr, observed, angle, degradations
        )

    def _note_degradation(
        self,
        degradations: List[Degradation],
        stage: str,
        fallback: str,
        exc: BaseException,
    ) -> None:
        degradations.append(
            Degradation(stage, fallback, type(exc).__name__, str(exc))
        )
        self.metrics.count("resilience.degrade")
        self.tracer.event(
            "pipeline.degrade",
            stage=stage,
            fallback=fallback,
            error_type=type(exc).__name__,
        )

    def _ner_fallback(self, blocks: Sequence[LayoutNode]) -> List[Extraction]:
        """Last-rung extraction: generic dictionary/NER recognition over
        the block transcriptions when pattern matching is unavailable.
        Entity types carry an ``ner:`` prefix so scoring code can tell
        a degraded extraction from a pattern-matched one."""
        from repro.nlp.ner import recognize_entities

        picked: Dict[str, Extraction] = {}
        for block in blocks:
            text = block.text()
            if not text.strip():
                continue
            for entity in recognize_entities(text):
                key = f"ner:{entity.label.lower()}"
                best = picked.get(key)
                if best is None or entity.confidence > best.score:
                    picked[key] = Extraction(
                        key, entity.text, block.bbox, block.bbox, entity.confidence
                    )
        return [picked[key] for key in sorted(picked)]

    def run_corpus(
        self, docs: Sequence[Document], workers: int = 1
    ) -> List[PipelineResult]:
        """Run the pipeline over a document collection.

        ``workers > 1`` fans the corpus out across a process pool via
        :class:`repro.perf.runner.CorpusRunner` (results stay in input
        order and are identical to the serial path).  This method keeps
        the historical fail-fast contract — the first per-document
        error is re-raised; use :class:`CorpusRunner` directly for
        error isolation and per-run metrics.
        """
        from repro.perf.runner import CorpusRunner

        runner = CorpusRunner(
            self.dataset, config=self.config, workers=workers, cache=self.cache
        )
        outcome = runner.run(docs)
        outcome.raise_first()
        self.metrics.merge(outcome.metrics)
        return list(outcome.ok)
