"""Holdout corpus construction (§5.2.1, Table 2).

The four-step pipeline of the paper, executed against the synthetic
fixed-format websites of :mod:`repro.synth.websites`:

(a) an "expert" identifies the site(s) carrying the named entities in a
    fixed-format HTML environment (Table 2 — encoded in
    ``HOLDOUT_SOURCES``);
(b) the site is queried so the result set is maximised (the builders'
    ``n_results``);
(c) a custom web wrapper extracts the text of every appearance of each
    entity;
(d) tuples ``(N_i, T_{N_i})`` are inserted into the corpus until the
    distribution of distinct syntactic patterns is approximately normal
    or the results are exhausted — checked with a Shapiro–Wilk test
    [40] over per-pattern counts, as the paper cites.

This module holds the corpus *container* and the pattern-distribution
stopping criterion — the parts the selection stage consumes.  The
scraper that fills a corpus from the synthetic websites
(``build_holdout_corpus``) lives in :mod:`repro.synth.holdout`, above
the synth layer it reads from, and is re-exported here for its
historical path (layering rule ``LAYER001``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class HoldoutCorpus:
    """Annotated text-only corpus: entity type → list of text entries."""

    dataset: str
    entries: Dict[str, List[str]] = field(default_factory=dict)

    def add(self, entity_type: str, text: str) -> None:
        text = text.strip()
        if text:
            self.entries.setdefault(entity_type, []).append(text)

    def texts_for(self, entity_type: str) -> List[str]:
        return self.entries.get(entity_type, [])

    def entity_types(self) -> List[str]:
        return list(self.entries)

    def size(self) -> int:
        return sum(len(v) for v in self.entries.values())

    def all_texts(self) -> List[str]:
        return [t for texts in self.entries.values() for t in texts]


def pattern_signature(text: str) -> Tuple[str, ...]:
    """A coarse syntactic signature of one entry (chunk label sequence).

    Used for the "distribution of distinct syntactic patterns" stopping
    criterion: two entries with the same chunk-label sequence realise
    the same surface pattern.
    """
    from repro.nlp.chunker import chunk

    return tuple(c.label for c in chunk(text) if c.label != "O") or ("O",)


def pattern_distribution(texts: List[str]) -> Counter:
    """Histogram of distinct syntactic patterns across ``texts``."""
    return Counter(pattern_signature(t) for t in texts)


def distribution_is_approximately_normal(counts: Counter, alpha: float = 0.01) -> bool:
    """Shapiro–Wilk [40] test on the per-pattern counts.

    With fewer than three distinct patterns the test is undefined; the
    paper's stopping rule then falls through to "no more tuples".
    """
    from scipy import stats

    values = list(counts.values())
    if len(values) < 3:
        return False
    _, p_value = stats.shapiro(values)
    return bool(p_value > alpha)


def __getattr__(name: str):
    # Lazy re-export of the scraper for the historical import path;
    # a module-scope import would pull repro.synth into repro.core.
    if name == "build_holdout_corpus":
        from repro.synth.holdout import build_holdout_corpus

        return build_holdout_corpus
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
