"""Holdout corpus construction (§5.2.1, Table 2).

The four-step pipeline of the paper, executed against the synthetic
fixed-format websites of :mod:`repro.synth.websites`:

(a) an "expert" identifies the site(s) carrying the named entities in a
    fixed-format HTML environment (Table 2 — encoded in
    ``HOLDOUT_SOURCES``);
(b) the site is queried so the result set is maximised (the builders'
    ``n_results``);
(c) a custom web wrapper extracts the text of every appearance of each
    entity;
(d) tuples ``(N_i, T_{N_i})`` are inserted into the corpus until the
    distribution of distinct syntactic patterns is approximately normal
    or the results are exhausted — checked with a Shapiro–Wilk test
    [40] over per-pattern counts, as the paper cites.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.html import parse_html
from repro.html.wrapper import extract_records
from repro.synth.websites import HOLDOUT_SOURCES


@dataclass
class HoldoutCorpus:
    """Annotated text-only corpus: entity type → list of text entries."""

    dataset: str
    entries: Dict[str, List[str]] = field(default_factory=dict)

    def add(self, entity_type: str, text: str) -> None:
        text = text.strip()
        if text:
            self.entries.setdefault(entity_type, []).append(text)

    def texts_for(self, entity_type: str) -> List[str]:
        return self.entries.get(entity_type, [])

    def entity_types(self) -> List[str]:
        return list(self.entries)

    def size(self) -> int:
        return sum(len(v) for v in self.entries.values())

    def all_texts(self) -> List[str]:
        return [t for texts in self.entries.values() for t in texts]


def pattern_signature(text: str) -> Tuple[str, ...]:
    """A coarse syntactic signature of one entry (chunk label sequence).

    Used for the "distribution of distinct syntactic patterns" stopping
    criterion: two entries with the same chunk-label sequence realise
    the same surface pattern.
    """
    from repro.nlp.chunker import chunk

    return tuple(c.label for c in chunk(text) if c.label != "O") or ("O",)


def pattern_distribution(texts: List[str]) -> Counter:
    """Histogram of distinct syntactic patterns across ``texts``."""
    return Counter(pattern_signature(t) for t in texts)


def distribution_is_approximately_normal(counts: Counter, alpha: float = 0.01) -> bool:
    """Shapiro–Wilk [40] test on the per-pattern counts.

    With fewer than three distinct patterns the test is undefined; the
    paper's stopping rule then falls through to "no more tuples".
    """
    from scipy import stats

    values = list(counts.values())
    if len(values) < 3:
        return False
    _, p_value = stats.shapiro(values)
    return bool(p_value > alpha)


def build_holdout_corpus(
    dataset: str,
    seed: int = 0,
    max_entries_per_entity: Optional[int] = None,
) -> HoldoutCorpus:
    """Scrape the dataset's Table 2 sources into a holdout corpus.

    The full scrape → parse → wrap path runs: sites are serialised to
    HTML strings, parsed back and traversed by each source's wrapper
    rule.  For D2 the paper keeps the first 500 results per query; for
    D3 the top 100 per query; D1 takes the complete field index.
    """
    dataset = dataset.upper()
    if dataset not in HOLDOUT_SOURCES:
        raise ValueError(f"unknown dataset {dataset!r}")
    corpus = HoldoutCorpus(dataset)
    defaults = {"D1": None, "D2": 250, "D3": 100}
    for builder, wrapper, _note in HOLDOUT_SOURCES[dataset]:
        if dataset == "D1":
            html = builder(seed)
        else:
            html = builder(seed, defaults[dataset])
        root = parse_html(html)
        for record in extract_records(root, wrapper):
            for entity_type, text in record.items():
                if dataset == "D1":
                    # D1 records are (field_id, descriptor) rows: the
                    # descriptor is the annotated text of the field id.
                    continue
                if max_entries_per_entity is not None and len(
                    corpus.texts_for(entity_type)
                ) >= max_entries_per_entity:
                    continue
                corpus.add(entity_type, text)
        if dataset == "D1":
            for record in extract_records(root, wrapper):
                corpus.add(record["field_id"], record["descriptor"])
    return corpus
