"""Low-level visual features (Table 1).

Each atomic element is encoded with the empirically selected features
the paper clusters on: centroid position, bounding-box height, average
LAB colour, angular distance of the centroid from the page origin —
plus the pairwise *sum of angular distances* used as a distance-space
feature.  All features are normalised to comparable scales before
clustering so no single unit dominates.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.doc.elements import AtomicElement
from repro.geometry import BBox

#: Feature names, in vector order (Table 1 of the paper).
VISUAL_FEATURES = (
    "centroid_x",
    "centroid_y",
    "height",
    "color_l",
    "color_a",
    "color_b",
    "angular_distance",
)


def element_feature_vector(element: AtomicElement, frame: BBox) -> np.ndarray:
    """Raw (unnormalised) Table 1 features of one element.

    Positions are taken relative to ``frame`` (the visual area being
    clustered) so the encoding is translation-invariant across nested
    areas.
    """
    cx, cy = element.bbox.centroid
    rel = BBox(element.bbox.x - frame.x, element.bbox.y - frame.y, element.bbox.w, element.bbox.h)
    return np.array(
        [
            cx - frame.x,
            cy - frame.y,
            element.bbox.h,
            element.color.l,
            element.color.a,
            element.color.b,
            rel.angular_distance,
        ]
    )


def feature_matrix(elements: Sequence[AtomicElement], frame: BBox) -> np.ndarray:
    """Normalised feature matrix for a set of elements.

    Spatial features scale by the frame diagonal, height by the max
    element height, colour by the LAB dynamic range, angle by π/2 —
    putting every column roughly in [0, 1].
    """
    if not elements:
        return np.zeros((0, len(VISUAL_FEATURES)))
    raw = np.stack([element_feature_vector(e, frame) for e in elements])
    diag = float(np.hypot(frame.w, frame.h)) or 1.0
    max_h = float(max(e.bbox.h for e in elements)) or 1.0
    scale = np.array([diag, diag, max_h, 100.0, 128.0, 128.0, np.pi / 2.0])
    return raw / scale


def pairwise_feature_distance(features: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix in the normalised feature space,
    augmented with the Table 1 pairwise term (sum of angular
    distances, scaled like the unary angle feature)."""
    n = len(features)
    if n == 0:
        return np.zeros((0, 0))
    diff = features[:, None, :] - features[None, :, :]
    base = np.sqrt((diff**2).sum(axis=2))
    angle = np.abs(features[:, -1])
    angular_sum = angle[:, None] + angle[None, :]
    np.fill_diagonal(angular_sum, 0.0)
    return base + 0.1 * angular_sum


def clustering_distance_matrix(
    elements: Sequence[AtomicElement],
    frame: BBox,
    gap_scale: float = 2.5,
    font_type_weight: float = 0.0,
) -> np.ndarray:
    """Pairwise distances driving the implicit-modifier clustering.

    Table 1's features enter in scale-relative form, which is what
    "proximity" means typographically: a word gap is *close* at any
    font size, an inter-block gap is *far* at any font size.

    =================  ==================================================
    term               realisation
    =================  ==================================================
    centroid position  box gap distance / (``gap_scale`` · taller height)
    height             relative height difference
    colour             LAB ΔE / 100
    angular distance   |Δangle of centroids from frame origin| / (π/2)
    =================  ==================================================
    """
    n = len(elements)
    out = np.zeros((n, n))
    if n == 0:
        return out
    heights = np.array([max(e.bbox.h, 1.0) for e in elements])
    colors = np.array([[e.color.l, e.color.a, e.color.b] for e in elements])
    angles = np.array(
        [
            BBox(e.bbox.x - frame.x, e.bbox.y - frame.y, e.bbox.w, e.bbox.h).angular_distance
            for e in elements
        ]
    )
    for i in range(n):
        bi = elements[i].bbox
        for j in range(i + 1, n):
            bj = elements[j].bbox
            taller = max(heights[i], heights[j])
            # Direction-aware proximity: along a text line, word spacing
            # (and OCR word-drop holes) runs much wider than the
            # leading between stacked lines, so horizontal separation is
            # forgiven at double the scale of vertical separation.
            gap_x = max(bj.x - bi.x2, bi.x - bj.x2, 0.0)
            gap_y = max(bj.y - bi.y2, bi.y - bj.y2, 0.0)
            gap = gap_x / (2.0 * gap_scale * taller) + gap_y / (gap_scale * taller)
            height = abs(heights[i] - heights[j]) / taller
            color = float(np.linalg.norm(colors[i] - colors[j])) / 100.0
            angle = abs(angles[i] - angles[j]) / (np.pi / 2.0)
            d = gap + 0.6 * height + 0.5 * color + 0.15 * angle
            if font_type_weight > 0:
                d += font_type_weight * _font_type_distance(elements[i], elements[j])
            out[i, j] = out[j, i] = d
    return out


def _font_type_distance(a: AtomicElement, b: AtomicElement) -> float:
    """Typeface dissimilarity in [0, 1] — the §7 future-work feature
    ("a generalizable feature to identify font-type").

    Image elements carry no typography and score 0 against anything.
    """
    from repro.doc.elements import TextElement

    if not isinstance(a, TextElement) or not isinstance(b, TextElement):
        return 0.0
    terms = [
        0.0 if a.font_family == b.font_family else 1.0,
        0.0 if a.bold == b.bold else 1.0,
        0.0 if a.italic == b.italic else 1.0,
    ]
    return sum(terms) / len(terms)


def spatial_gap_matrix(elements: Sequence[AtomicElement]) -> np.ndarray:
    """Pairwise box-gap distances (layout units) between elements."""
    n = len(elements)
    gaps = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            g = elements[i].bbox.gap_distance(elements[j].bbox)
            gaps[i, j] = gaps[j, i] = g
    return gaps


def visually_separated(
    a: AtomicElement, b: AtomicElement, others: Sequence[AtomicElement]
) -> bool:
    """Whether a third element sits between ``a`` and ``b``.

    The clustering step only groups a closest pair "not visually
    separated by another atomic element" (§5.1.2): we test whether any
    other element's box intersects the straight corridor between the
    two centroids.
    """
    corridor = a.bbox.union(b.bbox)
    ax, ay = a.bbox.centroid
    bx, by = b.bbox.centroid
    for other in others:
        if other is a or other is b:
            continue
        if not corridor.intersects(other.bbox):
            continue
        # An element *containing* either endpoint is background (text
        # drawn over a banner/photo), not something standing between.
        if other.bbox.contains_point(ax, ay) or other.bbox.contains_point(bx, by):
            continue
        if _segment_hits_box(ax, ay, bx, by, other.bbox):
            return True
    return False


def _segment_hits_box(x1: float, y1: float, x2: float, y2: float, box: BBox) -> bool:
    """Liang–Barsky style test: does segment (x1,y1)-(x2,y2) cross box?"""
    dx, dy = x2 - x1, y2 - y1
    t0, t1 = 0.0, 1.0
    for p, q in (
        (-dx, x1 - box.x),
        (dx, box.x2 - x1),
        (-dy, y1 - box.y),
        (dy, box.y2 - y1),
    ):
        if p == 0:
            if q < 0:
                return False
            continue
        r = q / p
        if p < 0:
            t0 = max(t0, r)
        else:
            t1 = min(t1, r)
        if t0 > t1:
            return False
    return True


def color_feature(elements: Sequence[AtomicElement]) -> List[float]:
    """Mean LAB colour of a set of elements (block-level feature)."""
    if not elements:
        return [0.0, 0.0, 0.0]
    arr = np.array([[e.color.l, e.color.a, e.color.b] for e in elements])
    return arr.mean(axis=0).tolist()
