"""Semantic merging (§5.1.2, Eq. 1).

Recursive segmentation over-segments — especially on noisy
transcriptions — so VS2 merges sibling areas that carry similar
semantics.  The *semantic contribution* of a node ``n_i`` is

    SC(n_i) = Σ_j cos(n_i, n_j) − Σ_k cos(n_i, n_k)        (Eq. 1)

where ``n_j`` ranges over siblings and ``n_k`` over same-level
non-siblings; node vectors are mean word embeddings of their text
(pre-trained Word2Vec in the paper, our default embedding here).  When
``SC(n_i) > θ_h`` the node merges with its most similar sibling,
provided the two are not visually separated.  The threshold schedule is
the paper's footnote:

    θ_h = θ_min + (θ_max − θ_min) / 10 · h,     h = layout-tree height

so deeper (finer) trees demand more evidence before merging.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.config import SegmentConfig
from repro.doc.layout_tree import LayoutNode, LayoutTree
from repro.embeddings import WordEmbedding, cosine_similarity, default_embedding
from repro.geometry import enclosing_bbox
from repro.resilience.faults import fault_site
from repro.trace import Tracer


def merge_threshold(height: int, config: SegmentConfig) -> float:
    """θ_h for a tree of the given height."""
    return config.theta_min + (config.theta_max - config.theta_min) / 10.0 * height


def node_vector(node: LayoutNode, embedding: WordEmbedding, cache: Dict[int, np.ndarray]) -> np.ndarray:
    vec = cache.get(node.node_id)
    if vec is None:
        vec = embedding.embed_text(node.text())
        cache[node.node_id] = vec
    return vec


def semantic_contribution(
    node: LayoutNode,
    level_nodes: List[LayoutNode],
    embedding: WordEmbedding,
    cache: Dict[int, np.ndarray],
) -> float:
    """Eq. 1 for ``node`` against its level of the tree.

    The printed equation sums cosine similarities; raw sums scale with
    the sibling count, so a literal reading lets SC cross any fixed
    threshold merely by having many siblings.  We therefore read the
    two Σ terms as *averages* over their index sets — the
    scale-invariant interpretation under which the θ ∈ [0, 1] schedule
    of the footnote is meaningful.
    """
    v = node_vector(node, embedding, cache)
    siblings = set(id(s) for s in node.siblings())
    sibling_sims: List[float] = []
    other_sims: List[float] = []
    for other in level_nodes:
        if other is node:
            continue
        sim = cosine_similarity(v, node_vector(other, embedding, cache))
        if id(other) in siblings:
            sibling_sims.append(sim)
        else:
            other_sims.append(sim)
    # The sibling term uses the *best* sibling (the merge partner the
    # next step would pick); the non-sibling term stays an average.  A
    # literal mean over heterogeneous siblings would let unrelated
    # siblings veto a clearly co-fragmented pair.
    best_sib = float(np.max(sibling_sims)) if sibling_sims else 0.0
    mean_other = float(np.mean(other_sims)) if other_sims else 0.0
    return best_sib - mean_other


def _not_visually_separated(a: LayoutNode, b: LayoutNode, config: SegmentConfig) -> bool:
    gap = a.bbox.gap_distance(b.bbox)
    font = max(a.mean_font_size(), b.mean_font_size(), 1.0)
    return gap <= config.merge_gap_ratio * font


def _merge_nodes(parent: LayoutNode, a: LayoutNode, b: LayoutNode) -> LayoutNode:
    """Replace siblings ``a`` and ``b`` under ``parent`` by their union."""
    merged = LayoutNode(
        bbox=a.bbox.union(b.bbox),
        atoms=a.atoms + b.atoms,
        kind="merged",
    )
    # The merged node is a leaf-level union: children of the originals
    # collapse into it (the paper replaces both nodes by the merged one).
    new_children = []
    for child in parent.children:
        if child is a:
            new_children.append(merged)
        elif child is b:
            continue
        else:
            new_children.append(child)
    parent.replace_children(new_children)
    if merged.atoms:
        merged.bbox = enclosing_bbox([x.bbox for x in merged.atoms])
    return merged


def _node_label(node: LayoutNode) -> str:
    """Stable, cross-process identification of a node for trace events.

    ``node_id`` comes from a process-global counter, so it differs
    between a serial run and a worker process; a text snippet plus the
    rounded bbox identifies the node deterministically instead.
    """
    text = node.text().strip()
    snippet = text[:24] + ("…" if len(text) > 24 else "")
    b = node.bbox
    return f"{snippet!r}@({b.x:.0f},{b.y:.0f},{b.w:.0f},{b.h:.0f})"


def semantic_merge(
    tree: LayoutTree,
    config: SegmentConfig,
    embedding: Optional[WordEmbedding] = None,
    tracer: Optional[Tracer] = None,
) -> int:
    """Run the merging fixpoint over ``tree``; returns merges performed.

    Each pass walks levels deepest-first; a pass that performs no merge
    terminates the loop.  With tracing enabled, every Eq. 1 comparison
    becomes a ``merge.decision`` event and every fixpoint pass a
    ``merge.pass`` event.
    """
    fault_site("segment.merge")
    if embedding is None:
        embedding = default_embedding()
    tracing = tracer is not None and tracer.enabled
    cache: Dict[int, np.ndarray] = {}
    total = 0
    for _pass in range(32):  # fixpoint bound (defensive)
        height = tree.height
        theta = merge_threshold(height, config)
        merged_this_pass = 0
        for level in range(height, 0, -1):
            level_nodes = tree.nodes_at_level(level)
            textual = [n for n in level_nodes if n.text_atoms]
            for node in list(textual):
                if node.parent is None or not any(c is node for c in node.parent.children):
                    continue  # already consumed by a merge
                # Only leaves (logical-block candidates) merge — merging
                # internal nodes would discard their sub-structure.  The
                # guards against wrong merges are Eq. 1's contribution
                # threshold, the pairwise similarity gate and the
                # visual-separation test below.
                if not node.is_leaf:
                    continue
                siblings = [s for s in node.siblings() if s.is_leaf and s.text_atoms]
                if not siblings:
                    continue
                sc = semantic_contribution(node, textual, embedding, cache)
                if sc <= theta:
                    if tracing:
                        tracer.event(
                            "merge.decision",
                            height=height,
                            level=level,
                            theta=round(theta, 4),
                            sc=round(sc, 4),
                            node=_node_label(node),
                            merged=False,
                            partner=None,
                            sim=None,
                            reason="sc_below_theta",
                        )
                    continue
                v = node_vector(node, embedding, cache)
                candidates = sorted(
                    siblings,
                    key=lambda s: -cosine_similarity(v, node_vector(s, embedding, cache)),
                )
                chosen = None
                best_sim = None
                for partner in candidates:
                    sim = cosine_similarity(v, node_vector(partner, embedding, cache))
                    if best_sim is None:
                        best_sim = sim
                    # The θ schedule gates the *contribution*; the pair
                    # itself must genuinely share semantics, or tightly
                    # adjacent but semantically distinct areas (title vs
                    # schedule line) would re-merge.
                    if sim > max(theta, 0.3) and _not_visually_separated(node, partner, config):
                        chosen = (partner, sim)
                        merged = _merge_nodes(node.parent, node, partner)
                        cache.pop(merged.node_id, None)
                        merged_this_pass += 1
                        break
                if tracing:
                    tracer.event(
                        "merge.decision",
                        height=height,
                        level=level,
                        theta=round(theta, 4),
                        sc=round(sc, 4),
                        node=_node_label(node),
                        merged=chosen is not None,
                        partner=_node_label(chosen[0]) if chosen else None,
                        sim=round(float(chosen[1] if chosen else best_sim), 4)
                        if (chosen or best_sim is not None)
                        else None,
                        reason="merged" if chosen else "no_eligible_partner",
                    )
        total += merged_this_pass
        if tracing:
            tracer.event(
                "merge.pass",
                height=height,
                theta=round(theta, 4),
                merges=merged_this_pass,
            )
        # Merging two of a node's children can leave a unary chain
        # whose surviving leaf would be invisible to its aunt nodes on
        # the next pass; collapse chains before re-walking.
        tree.collapse_unary()
        if merged_this_pass == 0:
            break
    return total
