"""Word-level form-field descriptor matching (shared by VS2's D1 path
and the text-only baselines).

D1 extraction matches field descriptors by "exact string match"
(§5.2.1) — read modulo OCR noise.  Matching at *word* level keeps the
raw (formatted) value text and its bounding box exact: the descriptor
is located as a fuzzy word subsequence, and the words that follow are
the field value.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.doc.elements import TextElement
from repro.nlp.fuzzy import normalize_for_match, ocr_fold, similarity_ratio


def find_descriptor_span(
    words: Sequence[TextElement],
    descriptor: str,
    min_ratio: float = 0.8,
) -> Optional[Tuple[int, int, float]]:
    """Locate ``descriptor`` as a fuzzy word subsequence of ``words``.

    Returns ``(start_word, end_word, ratio)`` for the best-matching
    window, or ``None``.  An OCR-folded first-token prefilter keeps the
    edit-distance work bounded (descriptors start with line numbers).
    """
    desc_norm = normalize_for_match(descriptor)
    desc_tokens = desc_norm.split()
    if not desc_tokens:
        return None
    first_fold = ocr_fold(desc_tokens[0])
    n = len(desc_tokens)
    best: Optional[Tuple[int, int, float]] = None
    for i, w in enumerate(words):
        if ocr_fold(w.text) != first_fold:
            continue
        for length in (n, n - 1, n + 1):
            if length < 1 or i + length > len(words):
                continue
            window = normalize_for_match(" ".join(x.text for x in words[i : i + length]))
            ratio = similarity_ratio(window, desc_norm)
            if ratio >= min_ratio and (best is None or ratio > best[2]):
                best = (i, i + length, ratio)
    return best
