"""VS2 — the paper's primary contribution.

Two phases (§5):

1. **VS2-Segment** (:mod:`repro.core.segment`) encodes a visually rich
   document as a bag of *logical blocks* via hierarchical segmentation:
   explicit delimiters (Algorithm 1, :mod:`repro.core.delimiters`),
   implicit-modifier clustering (:mod:`repro.core.clustering`, Table 1
   features in :mod:`repro.core.features`) and semantic merging
   (Eq. 1, :mod:`repro.core.merging`).
2. **VS2-Select** (:mod:`repro.core.select`) searches learned
   lexico-syntactic patterns (:mod:`repro.core.patterns`, distant
   supervision from the holdout corpus of :mod:`repro.core.holdout`)
   within each block and resolves conflicts by multimodal
   disambiguation (:mod:`repro.core.disambiguate`) against interest
   points (:mod:`repro.core.interest_points`).

:class:`repro.core.pipeline.VS2Pipeline` wires both phases end to end.
"""

from repro.core.config import SegmentConfig, SelectConfig, VS2Config
from repro.core.segment import VS2Segmenter
from repro.core.select import Extraction, VS2Selector
from repro.core.pipeline import PipelineResult, VS2Pipeline

__all__ = [
    "SegmentConfig",
    "SelectConfig",
    "VS2Config",
    "VS2Segmenter",
    "VS2Selector",
    "Extraction",
    "VS2Pipeline",
    "PipelineResult",
]
