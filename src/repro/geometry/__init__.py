"""Geometric primitives used throughout the VS2 reproduction.

The segmentation half of VS2 is fundamentally geometric: documents are
bags of bounding boxes, whitespace is the complement of those boxes on a
discretised page grid, and explicit visual delimiters are *cuts* — paths
through whitespace that traverse the page edge to edge (paper §5.1.1).
This package provides those primitives:

``BBox``
    An immutable axis-aligned bounding box with the intersection /
    union / IoU operations the evaluation protocol needs.
``OccupancyGrid``
    A discretised view of a page recording which cells are covered by
    content, i.e. which positions are *whitespace positions*.
``cuts``
    Valid k-hop movements, horizontal/vertical cuts, and grouping of
    consecutive cuts into candidate separators (Fig. 5 of the paper).
``profiles``
    Prefix-sum / integral-image whitespace projections — the O(1)
    per-candidate fast path of the cut search, plus the child-window
    memoisation contract (``docs/PERFORMANCE.md``).
"""

from repro.geometry.bbox import BBox, Point, enclosing_bbox, pairwise_iou
from repro.geometry.grid import OccupancyGrid
from repro.geometry.cuts import (
    CutSet,
    consecutive_cut_sets,
    find_horizontal_cuts,
    find_vertical_cuts,
    has_valid_horizontal_movement,
    has_valid_vertical_movement,
)
from repro.geometry.profiles import ProfileStore, RegionProfile

__all__ = [
    "ProfileStore",
    "RegionProfile",
    "BBox",
    "Point",
    "enclosing_bbox",
    "pairwise_iou",
    "OccupancyGrid",
    "CutSet",
    "consecutive_cut_sets",
    "find_horizontal_cuts",
    "find_vertical_cuts",
    "has_valid_horizontal_movement",
    "has_valid_vertical_movement",
]
