"""Prefix-sum whitespace projection profiles (the ``segment.cuts`` fast path).

The naive valid-cut search (:func:`repro.geometry.cuts.sheared_cut_rows`)
rescans the whole occupancy grid once per candidate slope and
orientation: every recursion node of VS2-Segment pays
``O(rows × cols)`` per slope, 19 slopes, both orientations.  That scan
dominated end-to-end extraction cost (``segment.cuts``: 0.70 s of the
1.04 s segment stage on the D2 bench).

This module replaces the rescan with two **integral images** built once
per region from the occupancy matrix ``occ``:

* ``row_prefix[r, c]  = Σ_{c' < c} occ[r, c']``  — horizontal cuts;
* ``col_prefix[r, c]  = Σ_{r' < r} occ[r', c]``  — vertical cuts.

A sheared cut line ``y = y0 + slope·x`` visits ``occ[y0 + d(x), x]``
where ``d(x) = round(slope·x)`` — exactly the cell walk of the naive
scan.  Because ``|slope| ≤ 0.18``, ``d`` is a step function with at
most ``|slope|·cols + 1`` distinct values, each constant over a
contiguous column run ``[a, b)``.  The occupied-cell count of the line
therefore decomposes into per-run windowed sums::

    count(y0) = Σ_runs  row_prefix[y0 + d, b] − row_prefix[y0 + d, a]

which is **O(1) per (candidate, run)** and, evaluated for every origin
``y0`` at once, a handful of shifted 1-D slice subtractions — no
``rows × cols`` temporary, no fancy indexing.  A cut exists exactly
where ``count == 0``; the arithmetic is integer, so the flags are
**byte-identical** to the naive scan's (the equivalence is enforced by
the ``cut.decision`` ledger diff in ``benchmarks/test_bench_smoke.py``
and the property tests in ``tests/test_geometry_profiles.py``).

Memoisation down the recursion
------------------------------
VS2-Segment recurses into sub-regions.  A child region *may* reuse
(window into) its parent's prefix arrays instead of rebuilding — but
only under the contract checked by :meth:`RegionProfile.try_window`:

1. the child frame is **cell-aligned** with the parent frame (both
   offsets are exact multiples of the cell size), and
2. the child's independently rasterised occupancy equals the parent's
   window slice (siblings whose boxes bleed into the child window, or
   float cell-boundary effects, break this).

When either condition fails the child **must rebuild** its own arrays
— correctness (byte-identical cut decisions) always wins over reuse.
:class:`ProfileStore` applies the contract and counts how often each
path was taken.  See ``docs/PERFORMANCE.md`` for the worked example
and the full design.

This module lives in ``repro.geometry`` (the base layer, so
``repro.core`` may import it); :mod:`repro.perf.profiles` re-exports
it as the perf-layer face, mirroring ``repro.perf.metrics``.
"""

from __future__ import annotations

# frame: any — profiles operate on whichever frame the occupancy grid
# discretised; no frame mixing happens here.

from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

#: ``(offset, first, last_exclusive)`` runs of constant shear offset.
OffsetRun = Tuple[int, int, int]


@lru_cache(maxsize=1024)
def _slope_run_table(
    slopes: Tuple[float, ...], n_cross: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Offset-run decomposition of *every* slope, concatenated.

    Returns ``(D, A, B, starts)``: per concatenated run its constant
    offset ``D[k]`` over crossing positions ``[A[k], B[k])``, and
    ``starts[s]`` — the first run index of slope ``s`` (for
    ``np.add.reduceat``).  Built fully vectorised (one rounding of the
    whole slopes × positions matrix, the same ``np.round`` walk as the
    naive scan) and cached per ``(slopes, n_cross)``: region shapes
    repeat heavily across documents of one corpus.
    """
    slope_arr = np.asarray(slopes, dtype=float)
    n_slopes = len(slopes)
    if n_cross <= 0 or n_slopes == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty, empty, np.zeros(n_slopes, dtype=np.intp)
    offsets = np.round(slope_arr[:, None] * np.arange(n_cross)[None, :]).astype(int)
    change_rows, change_cols = np.nonzero(offsets[:, 1:] != offsets[:, :-1])
    runs_per_slope = 1 + np.bincount(change_rows, minlength=n_slopes)
    starts = np.concatenate(([0], np.cumsum(runs_per_slope)[:-1])).astype(np.intp)
    total = int(runs_per_slope.sum())
    first = np.empty(total, dtype=np.intp)
    first[starts] = 0
    rest = np.ones(total, dtype=bool)
    rest[starts] = False
    first[rest] = change_cols + 1  # np.nonzero order groups by slope
    last = np.empty(total, dtype=np.intp)
    last[:-1] = first[1:]
    last[starts[1:] - 1] = n_cross
    last[-1] = n_cross
    run_slope = np.repeat(np.arange(n_slopes), runs_per_slope)
    return offsets[run_slope, first].astype(np.intp), first, last, starts


@lru_cache(maxsize=256)
def _gather_plan(
    slopes: Tuple[float, ...], orientation: str, n_origins: int, n_cross: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Precomputed flat ``take`` indices for one (shape, orientation).

    For an *unwindowed* profile the prefix-array layout is a pure
    function of the region shape, so the two gather index matrices
    (run start / run end, flattened into the contiguous prefix array),
    the off-region mask and the per-slope ``reduceat`` boundaries can
    be built once and reused by every region of that shape — each
    :meth:`RegionProfile.slope_line_occupancy` call then reduces to two
    ``take``\\ s, a masked fill and one ``reduceat``.

    Returns ``(flat_first, flat_last, off_region, starts)``.
    """
    offsets, first, last, starts = _slope_run_table(slopes, n_cross)
    origins = offsets[:, None] + np.arange(n_origins)[None, :]
    valid = (origins >= 0) & (origins < n_origins)
    safe = np.where(valid, origins, 0)
    if orientation == "horizontal":
        # row_prefix has shape (n_origins, n_cross + 1), C-contiguous.
        stride = n_cross + 1
        flat_first = safe * stride + first[:, None]
        flat_last = safe * stride + last[:, None]
    else:
        # col_prefix has shape (n_cross + 1, n_origins), C-contiguous.
        stride = n_origins
        flat_first = first[:, None] * stride + safe
        flat_last = last[:, None] * stride + safe
    return (
        flat_first.astype(np.int64),
        flat_last.astype(np.int64),
        ~valid,
        starts,
    )


@lru_cache(maxsize=4096)
def _offset_runs(slope: float, n_cross: int) -> Tuple[OffsetRun, ...]:
    """Decompose ``round(slope · t)`` for ``t in [0, n_cross)`` into
    maximal runs of constant offset.

    Uses the same ``np.round(...).astype(int)`` the naive scan uses, so
    the cell walk is identical (including banker's rounding at ``.5``).
    """
    if n_cross <= 0:
        return ()
    offsets = np.round(slope * np.arange(n_cross)).astype(int)
    breaks = np.flatnonzero(np.diff(offsets)) + 1
    starts = np.concatenate(([0], breaks))
    ends = np.concatenate((breaks, [n_cross]))
    return tuple(
        (int(offsets[s]), int(s), int(e)) for s, e in zip(starts, ends)
    )


def interior_scores_from_flags(flags: np.ndarray) -> np.ndarray:
    """Per-row interior-run score of a ``(n_slopes, n_origins)`` flag
    matrix: Σ sizes of the ``True`` runs touching neither border.

    The score equals the number of flagged origins minus the
    border-touching leading and trailing runs — computable with argmax
    scans, no per-slope run extraction.  Matches
    ``sum(size for _, size in interior_runs(...))`` exactly.
    """
    flags = np.asarray(flags, dtype=bool)
    n = flags.shape[1]
    total = flags.sum(axis=1)
    blocked = ~flags
    has_blocked = blocked.any(axis=1)
    first_blocked = np.where(has_blocked, blocked.argmax(axis=1), n)
    last_blocked = np.where(
        has_blocked, n - 1 - blocked[:, ::-1].argmax(axis=1), -1
    )
    lead = np.where(flags[:, 0], first_blocked, 0)
    trail = np.where(flags[:, -1], n - 1 - last_blocked, 0)
    scores = total - lead - trail
    scores[~has_blocked] = 0  # one border-to-border run: no interior
    return scores


def runs_of_flags(flags: np.ndarray) -> List[Tuple[int, int]]:
    """Maximal runs of ``True`` as ``(start, length)`` pairs, vectorised
    (the fast-path replacement for the per-element scan)."""
    f = np.asarray(flags, dtype=bool)
    if f.size == 0:
        return []
    padded = np.empty(f.size + 2, dtype=bool)
    padded[0] = padded[-1] = False
    padded[1:-1] = f
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    return [(int(s), int(e - s)) for s, e in zip(edges[0::2], edges[1::2])]


class RegionProfile:
    """Integral-image projections of one region's occupancy.

    A profile either owns freshly computed prefix arrays (built by
    :meth:`from_occupied`) or *windows* into an ancestor's arrays
    (built by :meth:`try_window`) — queries are identical either way,
    because every windowed sum rebases on the fly: the per-run
    difference ``prefix[·, b] − prefix[·, a]`` is unaffected by the
    column base, and the row base only shifts the slices.
    """

    __slots__ = ("occupied", "_row_prefix", "_col_prefix", "_window")

    def __init__(
        self,
        occupied: np.ndarray,
        row_prefix: np.ndarray,
        col_prefix: np.ndarray,
        window: Tuple[int, int, int, int],
    ):
        self.occupied = occupied
        self._row_prefix = row_prefix
        self._col_prefix = col_prefix
        self._window = window  # (row0, col0, n_rows, n_cols)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_occupied(cls, occupied: np.ndarray) -> "RegionProfile":
        """Build fresh prefix arrays for ``occupied`` (bool, rows×cols)."""
        occ = np.asarray(occupied, dtype=bool)
        if occ.ndim != 2:
            raise ValueError("occupancy must be a rows × cols matrix")
        n_rows, n_cols = occ.shape
        row_prefix = np.zeros((n_rows, n_cols + 1), dtype=np.int32)
        np.cumsum(occ, axis=1, dtype=np.int32, out=row_prefix[:, 1:])
        col_prefix = np.zeros((n_rows + 1, n_cols), dtype=np.int32)
        np.cumsum(occ, axis=0, dtype=np.int32, out=col_prefix[1:, :])
        return cls(occ, row_prefix, col_prefix, (0, 0, n_rows, n_cols))

    @classmethod
    def for_grid(cls, grid) -> "RegionProfile":
        """Profile of an :class:`~repro.geometry.grid.OccupancyGrid`."""
        return cls.from_occupied(grid.occupied)

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self._window[2]

    @property
    def n_cols(self) -> int:
        return self._window[3]

    @property
    def is_window(self) -> bool:
        """Whether this profile windows an ancestor's arrays."""
        return self._window[:2] != (0, 0) or self._window[2:] != self.occupied.shape

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def line_occupancy(self, orientation: str, slope: float = 0.0) -> np.ndarray:
        """Occupied-cell count of every sheared cut line, one entry per
        origin (row for horizontal, column for vertical).

        ``count[i] == 0`` ⇔ the line starting at origin ``i`` runs
        entirely through whitespace — the paper's valid cut.  Cells the
        shear pushes off the region count as whitespace, matching
        :func:`repro.geometry.cuts.sheared_cut_rows`.
        """
        r0, c0, n_rows, n_cols = self._window
        if orientation == "horizontal":
            n_origins, n_cross = n_rows, n_cols
        elif orientation == "vertical":
            n_origins, n_cross = n_cols, n_rows
        else:
            raise ValueError(f"bad orientation {orientation!r}")
        counts = np.zeros(n_origins, dtype=np.int64)
        for d, a, b in _offset_runs(slope, n_cross):
            lo = max(0, -d)
            hi = min(n_origins, n_origins - d)
            if hi <= lo:
                continue
            if orientation == "horizontal":
                seg = self._row_prefix[r0 + lo + d : r0 + hi + d]
                counts[lo:hi] += seg[:, c0 + b] - seg[:, c0 + a]
            else:
                top = self._col_prefix[r0 + a, c0 + lo + d : c0 + hi + d]
                bot = self._col_prefix[r0 + b, c0 + lo + d : c0 + hi + d]
                counts[lo:hi] += (bot - top).astype(np.int64)
        return counts

    def slope_line_occupancy(
        self, orientation: str, slopes: Tuple[float, ...]
    ) -> np.ndarray:
        """:meth:`line_occupancy` for *every* slope at once — one
        ``(n_slopes, n_origins)`` matrix.

        All slopes' offset runs are concatenated (cached per
        ``(slopes, shape)``), the per-run windowed sums gathered in one
        shot and reduced back per slope with ``np.add.reduceat``; the
        arithmetic is the same integer prefix differences, so each row
        is byte-identical to the per-slope query.  This collapses the
        ~19-slope × per-run Python loop into a handful of array ops.
        """
        r0, c0, n_rows, n_cols = self._window
        if orientation == "horizontal":
            n_origins, n_cross = n_rows, n_cols
            prefix = self._row_prefix
        elif orientation == "vertical":
            n_origins, n_cross = n_cols, n_rows
            prefix = self._col_prefix
        else:
            raise ValueError(f"bad orientation {orientation!r}")
        slopes = tuple(slopes)
        if n_cross == 0 or n_origins == 0 or not slopes:
            # Degenerate region: every line is trivially unoccupied
            # (``reduceat`` cannot reduce over zero runs).
            return np.zeros((len(slopes), n_origins), dtype=np.int64)
        if not self.is_window:
            # Unwindowed: the whole gather is a pure function of the
            # region shape — take the cached flat-index plan.
            flat_first, flat_last, off_region, starts = _gather_plan(
                slopes, orientation, n_origins, n_cross
            )
            flat = prefix.ravel()
            vals = flat.take(flat_last) - flat.take(flat_first)
            vals[off_region] = 0
            return np.add.reduceat(vals, starts, axis=0)
        # Windowed into an ancestor's arrays: same arithmetic, with the
        # window offset folded into a 2-D gather.
        offsets, first, last, starts = _slope_run_table(slopes, n_cross)
        origins = offsets[:, None] + np.arange(n_origins)[None, :]
        valid = (origins >= 0) & (origins < n_origins)
        safe = np.where(valid, origins, 0)
        if orientation == "horizontal":
            rows = r0 + safe
            vals = (
                prefix[rows, (c0 + last)[:, None]]
                - prefix[rows, (c0 + first)[:, None]]
            )
        else:
            cols = c0 + safe
            vals = (
                prefix[(r0 + last)[:, None], cols]
                - prefix[(r0 + first)[:, None], cols]
            )
        vals[~valid] = 0
        return np.add.reduceat(vals, starts, axis=0)

    def interior_scores(
        self, orientation: str, slopes: Tuple[float, ...]
    ) -> np.ndarray:
        """Interior-run score (Σ sizes of non-border-touching cut runs)
        of every slope, without materialising the runs."""
        return interior_scores_from_flags(
            self.slope_line_occupancy(orientation, slopes) == 0
        )

    def cut_flags(self, orientation: str, slope: float = 0.0) -> np.ndarray:
        """Boolean valid-cut vector (``True`` where a cut exists) —
        byte-identical to the naive scan's."""
        return self.line_occupancy(orientation, slope) == 0

    def interior_runs(self, orientation: str, slope: float = 0.0) -> List[Tuple[int, int]]:
        """Maximal consecutive valid-cut runs that touch neither border
        (margins admit cuts but never separate content)."""
        n = self.n_rows if orientation == "horizontal" else self.n_cols
        return [
            (start, size)
            for start, size in runs_of_flags(self.cut_flags(orientation, slope))
            if start > 0 and start + size < n
        ]

    # ------------------------------------------------------------------
    # Memoisation (the child-window contract)
    # ------------------------------------------------------------------
    def try_window(
        self, row_off: int, col_off: int, child_occupied: np.ndarray
    ) -> Optional["RegionProfile"]:
        """A windowed child profile, or ``None`` when reuse is unsound.

        ``child_occupied`` is the child's *independently rasterised*
        occupancy; the window is shared only when it equals this
        profile's slice at ``(row_off, col_off)`` — the verification
        half of the memoisation contract (the caller checks the
        cell-alignment half).  Sharing skips the two integral-image
        passes and their allocations; the comparison is a single
        vectorised ``array_equal`` over the window.
        """
        r0, c0, n_rows, n_cols = self._window
        h, w = child_occupied.shape
        if row_off < 0 or col_off < 0 or row_off + h > n_rows or col_off + w > n_cols:
            return None
        window = self.occupied[
            r0 + row_off : r0 + row_off + h, c0 + col_off : c0 + col_off + w
        ]
        if not np.array_equal(window, child_occupied):
            return None
        return RegionProfile(
            self.occupied,
            self._row_prefix,
            self._col_prefix,
            (r0 + row_off, c0 + col_off, h, w),
        )


class ProfileStore:
    """Hands each recursion node its :class:`RegionProfile`.

    Applies the memoisation contract: a child windows its parent's
    arrays only when the frames are cell-aligned *and* the rasterised
    occupancies provably match; otherwise it rebuilds.  ``windows`` /
    ``rebuilds`` count which path each region took (exposed for tests
    and diagnostics).
    """

    def __init__(self) -> None:
        self.windows = 0
        self.rebuilds = 0

    def profile_for(
        self,
        grid,
        frame=None,
        parent: Optional[RegionProfile] = None,
        parent_frame=None,
    ) -> RegionProfile:
        """Profile for ``grid`` (the region's own occupancy grid).

        ``frame`` / ``parent_frame`` are the region's and parent's
        bounding boxes in a shared coordinate frame; with a ``parent``
        profile they enable the window fast path.
        """
        if parent is not None and frame is not None and parent_frame is not None:
            row_off = (frame.y - parent_frame.y) / grid.cell
            col_off = (frame.x - parent_frame.x) / grid.cell
            if float(row_off).is_integer() and float(col_off).is_integer():
                profile = parent.try_window(
                    int(row_off), int(col_off), grid.occupied
                )
                if profile is not None:
                    self.windows += 1
                    return profile
        self.rebuilds += 1
        return RegionProfile.for_grid(grid)
