"""Discretised page occupancy.

The paper defines a *whitespace position* as a coordinate ``(x, y)`` not
covered by any content bounding box (§5.1.1).  Enumerating every pixel is
wasteful, so we discretise the page into square cells (default 4 units).
A cell is *occupied* when any content box overlaps it; otherwise it is a
whitespace position.  All cut-finding operates on this grid; cell size is
the resolution/speed knob and is exposed on every public entry point.
"""

from __future__ import annotations

# frame: any — the grid discretises whichever frame the input boxes
# share; it never mixes frames itself.

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.geometry.bbox import BBox


class OccupancyGrid:
    """Boolean occupancy of a page at a fixed cell resolution.

    Parameters
    ----------
    width, height:
        Page extent in layout units.
    cell:
        Side of a grid cell in layout units; must be positive.
    """

    def __init__(self, width: float, height: float, cell: float = 4.0):
        if width <= 0 or height <= 0:
            raise ValueError("page extent must be positive")
        if cell <= 0:
            raise ValueError("cell size must be positive")
        self.width = float(width)
        self.height = float(height)
        self.cell = float(cell)
        self.n_cols = max(1, int(np.ceil(width / cell)))
        self.n_rows = max(1, int(np.ceil(height / cell)))
        # occupied[row, col] — True when covered by content.
        self.occupied = np.zeros((self.n_rows, self.n_cols), dtype=bool)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_bboxes(
        cls,
        boxes: Iterable[BBox],
        width: float,
        height: float,
        cell: float = 4.0,
    ) -> "OccupancyGrid":
        grid = cls(width, height, cell)
        for box in boxes:
            grid.add_bbox(box)
        return grid

    def add_bbox(self, box: BBox) -> None:
        """Mark every cell overlapped by ``box`` as occupied.

        Boxes are clipped to the page; zero-area boxes are ignored.
        """
        if box.area <= 0:
            return
        c1 = int(np.floor(box.x / self.cell))
        r1 = int(np.floor(box.y / self.cell))
        c2 = int(np.ceil(box.x2 / self.cell))
        r2 = int(np.ceil(box.y2 / self.cell))
        c1 = max(c1, 0)
        r1 = max(r1, 0)
        c2 = min(c2, self.n_cols)
        r2 = min(r2, self.n_rows)
        if c2 > c1 and r2 > r1:
            self.occupied[r1:r2, c1:c2] = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def whitespace(self) -> np.ndarray:
        """Boolean matrix of whitespace positions (cells)."""
        return ~self.occupied

    def is_whitespace(self, x: float, y: float) -> bool:
        """Whether layout coordinate ``(x, y)`` is a whitespace position."""
        col = int(x / self.cell)
        row = int(y / self.cell)
        if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
            return False
        return not self.occupied[row, col]

    def occupancy_ratio(self) -> float:
        """Fraction of the page covered by content."""
        return float(self.occupied.mean())

    def row_to_y(self, row: int) -> float:
        return row * self.cell

    def col_to_x(self, col: int) -> float:
        return col * self.cell

    def subgrid(self, frame: BBox) -> "OccupancyGrid":
        """Occupancy restricted to ``frame`` (coordinates rebased to it).

        VS2-Segment recurses into the visual areas it carves out; each
        recursion level works on the subgrid of its own frame so cuts are
        sought only within that area.
        """
        sub = OccupancyGrid(max(frame.w, self.cell), max(frame.h, self.cell), self.cell)
        c1 = int(np.floor(frame.x / self.cell))
        r1 = int(np.floor(frame.y / self.cell))
        c2 = min(int(np.ceil(frame.x2 / self.cell)), self.n_cols)
        r2 = min(int(np.ceil(frame.y2 / self.cell)), self.n_rows)
        c1 = max(c1, 0)
        r1 = max(r1, 0)
        if c2 > c1 and r2 > r1:
            piece = self.occupied[r1:r2, c1:c2]
            sub.occupied[: piece.shape[0], : piece.shape[1]] = piece
        return sub

    # ------------------------------------------------------------------
    # Projections (used by XY-cut style algorithms)
    # ------------------------------------------------------------------
    def horizontal_projection(self) -> np.ndarray:
        """Number of occupied cells per row."""
        return self.occupied.sum(axis=1)

    def vertical_projection(self) -> np.ndarray:
        """Number of occupied cells per column."""
        return self.occupied.sum(axis=0)

    def empty_row_runs(self) -> List[Tuple[int, int]]:
        """Maximal runs ``(start_row, length)`` of completely empty rows."""
        return _runs(self.horizontal_projection() == 0)

    def empty_col_runs(self) -> List[Tuple[int, int]]:
        """Maximal runs ``(start_col, length)`` of completely empty columns."""
        return _runs(self.vertical_projection() == 0)


def _runs(flags: Sequence[bool]) -> List[Tuple[int, int]]:
    """Maximal runs of True values as ``(start, length)`` pairs."""
    runs: List[Tuple[int, int]] = []
    start = None
    for i, flag in enumerate(flags):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            runs.append((start, i - start))
            start = None
    if start is not None:
        runs.append((start, len(flags) - start))
    return runs
