"""Axis-aligned bounding boxes.

Every visual area in the paper's layout model (§4) is represented by the
smallest bounding box that encloses it, written ``b = (x_b, y_b, w_b,
h_b)`` where ``(x_b, y_b)`` is the top-left corner.  The page coordinate
system has its origin at the top-left corner with ``y`` growing
downwards, matching the paper's Fig. 5.
"""

from __future__ import annotations

# frame: any — boxes here are frame-polymorphic: every operation is
# valid in whichever coordinate frame the caller works in, provided all
# operands share it (the FRAME1xx checks enforce that at call sites).

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

Point = Tuple[float, float]


@dataclass(frozen=True, order=True)
class BBox:
    """An immutable axis-aligned bounding box.

    Attributes
    ----------
    x, y:
        Coordinates of the top-left corner.
    w, h:
        Width and height.  Zero-sized boxes are permitted (they arise as
        degenerate enclosures of empty regions) but negative extents are
        not.
    """

    x: float
    y: float
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"negative extent in BBox({self.x}, {self.y}, {self.w}, {self.h})")

    # ------------------------------------------------------------------
    # Derived coordinates
    # ------------------------------------------------------------------
    @property
    def x2(self) -> float:
        """Right edge (exclusive)."""
        return self.x + self.w

    @property
    def y2(self) -> float:
        """Bottom edge (exclusive)."""
        return self.y + self.h

    @property
    def area(self) -> float:
        return self.w * self.h

    @property
    def centroid(self) -> Point:
        return (self.x + self.w / 2.0, self.y + self.h / 2.0)

    @property
    def angular_distance(self) -> float:
        """Angle (radians) of the centroid measured from the page origin.

        Table 1 of the paper lists the *angular distance of the bbox
        centroid from origin* as one of the low-level visual features
        used during clustering.
        """
        cx, cy = self.centroid
        return math.atan2(cy, cx)

    # ------------------------------------------------------------------
    # Relationships with other boxes / points
    # ------------------------------------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        """Whether (x, y) lies inside the box (edges inclusive on the
        top-left, exclusive on the bottom-right, so adjacent boxes do not
        share interior points)."""
        return self.x <= x < self.x2 and self.y <= y < self.y2

    def contains_bbox(self, other: "BBox") -> bool:
        return (
            self.x <= other.x
            and self.y <= other.y
            and other.x2 <= self.x2
            and other.y2 <= self.y2
        )

    def intersects(self, other: "BBox") -> bool:
        return not (
            other.x >= self.x2
            or other.x2 <= self.x
            or other.y >= self.y2
            or other.y2 <= self.y
        )

    def intersection(self, other: "BBox") -> Optional["BBox"]:
        """The overlapping region, or ``None`` when disjoint."""
        x1 = max(self.x, other.x)
        y1 = max(self.y, other.y)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 <= x1 or y2 <= y1:
            return None
        return BBox(x1, y1, x2 - x1, y2 - y1)

    def union(self, other: "BBox") -> "BBox":
        """The smallest box enclosing both boxes."""
        x1 = min(self.x, other.x)
        y1 = min(self.y, other.y)
        x2 = max(self.x2, other.x2)
        y2 = max(self.y2, other.y2)
        return BBox(x1, y1, x2 - x1, y2 - y1)

    def iou(self, other: "BBox") -> float:
        """Intersection-over-union, the matching criterion of §6.2.

        The paper follows the PASCAL-VOC protocol [12]: a proposal is
        accurate when its IoU against a ground-truth box exceeds 0.65.
        """
        inter = self.intersection(other)
        if inter is None:
            return 0.0
        union_area = self.area + other.area - inter.area
        if union_area <= 0:
            return 0.0
        # Near-degenerate boxes can make ``union_area`` land a few ulps
        # below ``inter.area`` (the areas are computed from derived
        # corners), which would push the ratio above 1.
        return min(inter.area / union_area, 1.0)

    def centroid_l1_distance(self, other: "BBox") -> float:
        """L1 distance between centroids — the ΔD term of Eq. 2."""
        ax, ay = self.centroid
        bx, by = other.centroid
        return abs(ax - bx) + abs(ay - by)

    def centroid_l2_distance(self, other: "BBox") -> float:
        ax, ay = self.centroid
        bx, by = other.centroid
        return math.hypot(ax - bx, ay - by)

    def gap_distance(self, other: "BBox") -> float:
        """Euclidean distance between the closest points of two boxes.

        Zero when the boxes touch or overlap.  Used to find the
        *neighbouring bounding box* of a cut set (Algorithm 1) and for
        the "not visually separated" adjacency test during clustering.
        """
        dx = max(other.x - self.x2, self.x - other.x2, 0.0)
        dy = max(other.y - self.y2, self.y - other.y2, 0.0)
        return math.hypot(dx, dy)

    def sum_angular_distance(self, other: "BBox") -> float:
        """Sum of angular distances between two bbox centroids (Table 1)."""
        return abs(self.angular_distance) + abs(other.angular_distance)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def translate(self, dx: float, dy: float) -> "BBox":
        return BBox(self.x + dx, self.y + dy, self.w, self.h)

    def scale(self, sx: float, sy: Optional[float] = None) -> "BBox":
        if sy is None:
            sy = sx
        return BBox(self.x * sx, self.y * sy, self.w * sx, self.h * sy)

    def expand(self, margin: float) -> "BBox":
        """Grow the box by ``margin`` on every side (clamped at zero size)."""
        x = self.x - margin
        y = self.y - margin
        w = max(self.w + 2 * margin, 0.0)
        h = max(self.h + 2 * margin, 0.0)
        return BBox(x, y, w, h)

    def clip(self, frame: "BBox") -> Optional["BBox"]:
        """Clip this box to ``frame``; ``None`` when fully outside."""
        return self.intersection(frame)

    def rotate(self, angle_rad: float, cx: float, cy: float) -> "BBox":
        """The enclosing box of this box rotated about ``(cx, cy)``.

        VS2-Segment claims robustness to rotation up to 45° (§5.1.2);
        the synthetic "mobile capture" documents use this to skew their
        layout and the claim is exercised by property tests.
        """
        cos_a = math.cos(angle_rad)
        sin_a = math.sin(angle_rad)
        xs: List[float] = []
        ys: List[float] = []
        for px, py in (
            (self.x, self.y),
            (self.x2, self.y),
            (self.x, self.y2),
            (self.x2, self.y2),
        ):
            rx = cx + (px - cx) * cos_a - (py - cy) * sin_a
            ry = cy + (px - cx) * sin_a + (py - cy) * cos_a
            xs.append(rx)
            ys.append(ry)
        return BBox(min(xs), min(ys), max(xs) - min(xs), max(ys) - min(ys))

    def hsplit(self, frac: float, gap: float = 0.0) -> Tuple["BBox", "BBox"]:
        """Split the box vertically at ``frac`` of its width.

        Returns the ``(left, right)`` halves; ``gap`` units of the right
        half's leading edge are given up as horizontal spacing (the right
        half never collapses below one unit wide).
        """
        if not 0.0 < frac < 1.0:
            raise ValueError(f"hsplit fraction must be in (0, 1), got {frac}")
        left_w = self.w * frac
        left = BBox(self.x, self.y, left_w, self.h)
        right = BBox(
            self.x + left_w + gap,
            self.y,
            max(self.w - left_w - gap, 1.0),
            self.h,
        )
        return left, right

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.x, self.y, self.w, self.h)

    @staticmethod
    def from_tuple(values: Sequence[float]) -> "BBox":
        """Rebuild a box from an ``(x, y, w, h)`` sequence.

        The sanctioned deserialisation path (rule ``FRAME002``): going
        through a named factory keeps every tuple→box conversion in one
        place should the serialised layout ever change.
        """
        x, y, w, h = values
        return BBox(float(x), float(y), float(w), float(h))

    @staticmethod
    def from_corners(x1: float, y1: float, x2: float, y2: float) -> "BBox":
        if x2 < x1 or y2 < y1:
            raise ValueError("from_corners requires x2 >= x1 and y2 >= y1")
        return BBox(x1, y1, x2 - x1, y2 - y1)


def enclosing_bbox(boxes: Iterable[BBox]) -> BBox:
    """The smallest bounding box enclosing all ``boxes``.

    Raises ``ValueError`` on an empty iterable — a visual area with no
    content has no meaningful enclosure.
    """
    boxes = list(boxes)
    if not boxes:
        raise ValueError("enclosing_bbox of an empty collection")
    x1 = min(b.x for b in boxes)
    y1 = min(b.y for b in boxes)
    x2 = max(b.x2 for b in boxes)
    y2 = max(b.y2 for b in boxes)
    return BBox(x1, y1, x2 - x1, y2 - y1)


def pairwise_iou(proposals: Sequence[BBox], references: Sequence[BBox]):
    """Dense IoU matrix between two box collections.

    Vectorised with numpy: used by the evaluation harness where corpora
    contain tens of thousands of boxes.
    """
    import numpy as np

    if not proposals or not references:
        return np.zeros((len(proposals), len(references)))
    p = np.array([b.as_tuple() for b in proposals], dtype=float)
    r = np.array([b.as_tuple() for b in references], dtype=float)
    px1, py1 = p[:, 0:1], p[:, 1:2]
    px2, py2 = px1 + p[:, 2:3], py1 + p[:, 3:4]
    rx1, ry1 = r[None, :, 0], r[None, :, 1]
    rx2, ry2 = rx1 + r[None, :, 2], ry1 + r[None, :, 3]
    ix = np.clip(np.minimum(px2, rx2) - np.maximum(px1, rx1), 0, None)
    iy = np.clip(np.minimum(py2, ry2) - np.maximum(py1, ry1), 0, None)
    inter = ix * iy
    area_p = (p[:, 2] * p[:, 3])[:, None]
    area_r = (r[:, 2] * r[:, 3])[None, :]
    union = area_p + area_r - inter
    with_union = union > 0
    out = np.zeros_like(inter)
    out[with_union] = inter[with_union] / union[with_union]
    return out
