"""Valid movements and whitespace cuts (paper §5.1.1, Fig. 5).

The paper's definitions, restated on the discretised grid:

* A **whitespace position** is a grid cell not covered by any content
  bounding box.
* A **valid horizontal movement** from whitespace position ``(x, y)``
  steps to a whitespace position among ``(x+1, y)``, ``(x+1, y+1)`` and
  ``(x+1, y-1)`` — one column to the right with at most one row of
  vertical drift.  Vertical movements are symmetric.
* A **horizontal cut** originating at ``(0, y)`` exists when a valid
  W-hop horizontal movement from ``(0, y)`` exists, i.e. a drift-bounded
  whitespace path crosses the page from the left edge to the right edge.
* A maximal group of *consecutive* rows (columns) admitting cuts forms a
  :class:`CutSet` — the candidate visual separators handed to
  Algorithm 1.

Cut reachability is computed with a vectorised frontier propagation: we
carry, for every starting row, the set of rows its paths currently
occupy, as one boolean ``starts × rows`` matrix updated column by
column.  The drift of ±1 makes the update a 3-row dilation followed by a
mask against the next column's whitespace.
"""

from __future__ import annotations

# frame: any — cut finding runs on the occupancy grid of whichever
# frame the caller discretised; no frame mixing happens here.

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.bbox import BBox
from repro.geometry.grid import OccupancyGrid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geometry.profiles import RegionProfile

from repro.geometry.profiles import interior_scores_from_flags, runs_of_flags


@dataclass(frozen=True)
class CutSet:
    """A maximal set of consecutive valid cuts — a candidate separator.

    Attributes
    ----------
    orientation:
        ``"horizontal"`` for row cuts, ``"vertical"`` for column cuts.
    start_index:
        First grid row (or column) of the run.
    size:
        Number of consecutive cuts in the run; this cardinality is the
        separator *width* used by Algorithm 1.
    cell:
        Grid cell size, kept so the set can be mapped back to layout
        units.
    origin:
        Layout-unit offset of the grid frame on the page, needed when
        cuts were computed on a subgrid of a nested visual area.
    slope:
        Rise (in the cut direction) per unit of crossing direction —
        non-zero for cuts following a rotated page.
    """

    orientation: str
    start_index: int
    size: int
    cell: float
    origin: Tuple[float, float] = (0.0, 0.0)
    slope: float = 0.0

    def __post_init__(self) -> None:
        if self.orientation not in ("horizontal", "vertical"):
            raise ValueError(f"bad orientation {self.orientation!r}")
        if self.size <= 0:
            raise ValueError("a cut set holds at least one cut")

    @property
    def span_units(self) -> float:
        """Separator thickness in layout units."""
        return self.size * self.cell

    @property
    def start_units(self) -> float:
        """Position of the first cut in layout units (page frame)."""
        offset = self.origin[1] if self.orientation == "horizontal" else self.origin[0]
        return offset + self.start_index * self.cell

    @property
    def mid_units(self) -> float:
        """Centre line of the separator in layout units (page frame)."""
        return self.start_units + self.span_units / 2.0

    def start_position(self) -> Tuple[float, float]:
        """Layout coordinates where the first cut originates.

        Matches Fig. 5.b, where e.g. ``(0, 2)`` is the starting position
        of the cut set ``V_s1``.
        """
        if self.orientation == "horizontal":
            return (self.origin[0], self.start_units)
        return (self.start_units, self.origin[1])

    def neighbouring_bbox(self, boxes: List[BBox]) -> Optional[BBox]:
        """The content box at minimum distance from this separator.

        Algorithm 1 keys its width normalisation on the *neighbouring
        bounding box* of each cut set; ties break toward the taller box
        so the normalisation is stable.
        """
        if not boxes:
            return None
        line = self.as_bbox(_extent_for(boxes, self.orientation))
        return min(boxes, key=lambda b: (line.gap_distance(b), -b.h, b.x, b.y))

    def line_value_at(self, t: float) -> float:
        """Separator centre line evaluated at crossing coordinate ``t``
        (frame-local layout units): ``mid + slope·t``."""
        return self.mid_units + self.slope * t

    def as_bbox(self, extent: float) -> BBox:
        """The separator band as a bounding box spanning ``extent``."""
        if self.orientation == "horizontal":
            return BBox(self.origin[0], self.start_units, extent, self.span_units)
        return BBox(self.start_units, self.origin[1], self.span_units, extent)


def _extent_for(boxes: List[BBox], orientation: str) -> float:
    if orientation == "horizontal":
        return max(b.x2 for b in boxes)
    return max(b.y2 for b in boxes)


# ----------------------------------------------------------------------
# Movements
# ----------------------------------------------------------------------
def has_valid_horizontal_movement(grid: OccupancyGrid, col: int, row: int) -> bool:
    """Whether a valid 1-hop horizontal movement exists from cell
    ``(col, row)`` (grid indices)."""
    ws = grid.whitespace
    if not (0 <= row < grid.n_rows and 0 <= col < grid.n_cols - 1):
        return False
    if not ws[row, col]:
        return False
    for dr in (0, -1, 1):
        rr = row + dr
        if 0 <= rr < grid.n_rows and ws[rr, col + 1]:
            return True
    return False


def has_valid_vertical_movement(grid: OccupancyGrid, col: int, row: int) -> bool:
    """Whether a valid 1-hop vertical movement exists from ``(col, row)``."""
    ws = grid.whitespace
    if not (0 <= row < grid.n_rows - 1 and 0 <= col < grid.n_cols):
        return False
    if not ws[row, col]:
        return False
    for dc in (0, -1, 1):
        cc = col + dc
        if 0 <= cc < grid.n_cols and ws[row + 1, cc]:
            return True
    return False


# ----------------------------------------------------------------------
# Cuts
# ----------------------------------------------------------------------
#: Slopes (rows per column, grid units) scanned for slanted cuts.  The
#: ±1 per-hop drift of the paper's definition, taken literally, lets a
#: path wander arbitrarily far from its origin row (over W columns it
#: can drift ±W rows), making *every* row a cut origin on any page with
#: one empty band.  We realise the intended semantics — near-straight
#: separators that tolerate skew — as straight lines at a small set of
#: slopes: slope 0 for upright pages, up to ±0.12 (≈ ±7°) for the
#: rotated mobile captures (±10° ⇒ tan ≈ 0.18).
DEFAULT_SLOPES: Tuple[float, ...] = tuple(np.round(np.arange(-0.18, 0.1801, 0.02), 4))

#: Kept for API compatibility with the k-hop formulation.
DRIFT_RATIO = 0.08


def sheared_cut_rows(whitespace: np.ndarray, slope: float) -> np.ndarray:
    """Rows ``y0`` such that the line ``y = y0 + slope·x`` runs entirely
    through whitespace.  ``y0`` is anchored at column 0, matching the
    paper's "cut originating from (0, y)".  Cells sheared off the page
    count as whitespace (page margins are empty).
    """
    n_rows, n_cols = whitespace.shape
    cols = np.arange(n_cols)
    offsets = np.round(slope * cols).astype(int)
    rows = np.arange(n_rows)[:, None] + offsets[None, :]
    valid = (rows >= 0) & (rows < n_rows)
    rows_clipped = np.clip(rows, 0, n_rows - 1)
    values = whitespace[rows_clipped, cols[None, :]]
    values = values | ~valid
    return values.all(axis=1)


def find_horizontal_cuts(grid: OccupancyGrid, slope: float = 0.0) -> np.ndarray:
    """Boolean vector: ``True`` at row ``r`` when a horizontal cut with
    the given slope originating at ``(0, r)`` exists."""
    return sheared_cut_rows(grid.whitespace, slope)


def find_vertical_cuts(grid: OccupancyGrid, slope: float = 0.0) -> np.ndarray:
    """Boolean vector: ``True`` at column ``c`` when a vertical cut with
    the given slope originating at ``(c, 0)`` exists."""
    return sheared_cut_rows(grid.whitespace.T, slope)


def _runs_of(flags: np.ndarray) -> List[Tuple[int, int]]:
    runs: List[Tuple[int, int]] = []
    start = None
    for i, flag in enumerate(flags):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            runs.append((start, i - start))
            start = None
    if start is not None:
        runs.append((start, len(flags) - start))
    return runs


def consecutive_cut_sets(
    grid: OccupancyGrid,
    orientation: str,
    origin: Tuple[float, float] = (0.0, 0.0),
    slope: float = 0.0,
) -> List[CutSet]:
    """Group valid cuts (at one slope) into maximal consecutive runs."""
    if orientation == "horizontal":
        flags = find_horizontal_cuts(grid, slope)
    elif orientation == "vertical":
        flags = find_vertical_cuts(grid, slope)
    else:
        raise ValueError(f"bad orientation {orientation!r}")
    return [
        CutSet(orientation, start, size, grid.cell, origin, slope)
        for start, size in _runs_of(flags)
    ]


def interior_cut_sets(
    grid: OccupancyGrid,
    orientation: str,
    origin: Tuple[float, float] = (0.0, 0.0),
    slopes: Sequence[float] = DEFAULT_SLOPES,
    profile: Optional["RegionProfile"] = None,
) -> List[CutSet]:
    """Interior cut runs at the dominant slope.

    For each candidate slope the interior (non-border-touching) cut
    runs are computed; the slope whose runs cover the most cut lines
    wins — a page rotates as a whole, so one slope per area suffices.
    Margins always admit cuts but never separate content; Algorithm 1
    only reasons about interior separators.

    ``profile`` — a :class:`repro.geometry.profiles.RegionProfile` of
    the *same* grid — switches to the prefix-sum fast path: identical
    cut sets (the flags are integer-exact), evaluated in O(1) per
    candidate instead of rescanning the grid per slope.  Without it
    the original scan runs (the ``--naive-cuts`` A/B reference).
    """
    if profile is not None:
        return _interior_cut_sets_fast(grid, orientation, origin, slopes, profile)
    n = grid.n_rows if orientation == "horizontal" else grid.n_cols
    best: List[CutSet] = []
    best_score = -1
    for slope in slopes:
        sets = consecutive_cut_sets(grid, orientation, origin, slope)
        interior = [s for s in sets if s.start_index > 0 and s.start_index + s.size < n]
        score = sum(s.size for s in interior)
        # Prefer the straighter slope on ties (|slope| ascending order
        # would need a sorted scan; DEFAULT_SLOPES is symmetric, so
        # break ties toward the value closer to zero).
        if score > best_score or (score == best_score and best and abs(slope) < abs(best[0].slope)):
            best = interior
            best_score = score
    return best


def _interior_cut_sets_fast(
    grid: OccupancyGrid,
    orientation: str,
    origin: Tuple[float, float],
    slopes: Sequence[float],
    profile: "RegionProfile",
) -> List[CutSet]:
    """The prefix-sum fast path of :func:`interior_cut_sets`.

    Replicates the naive slope-selection loop exactly (same iteration
    order, same score, same straighter-slope tie-break — a non-empty
    run list is equivalent to a positive score) but evaluates every
    slope's score in one batched integral-image query and materialises
    runs and :class:`CutSet` objects only for the winning slope.
    """
    if (profile.n_rows, profile.n_cols) != (grid.n_rows, grid.n_cols):
        raise ValueError("profile shape does not match the grid")
    flags = profile.slope_line_occupancy(orientation, tuple(slopes)) == 0
    scores = interior_scores_from_flags(flags)
    best_idx = 0
    best_score = -1
    for i, slope in enumerate(slopes):
        score = int(scores[i])
        if score > best_score or (
            score == best_score
            and best_score > 0
            and abs(slope) < abs(slopes[best_idx])
        ):
            best_idx, best_score = i, score
    if best_score <= 0:
        return []
    n = flags.shape[1]
    return [
        CutSet(orientation, start, size, grid.cell, origin, slopes[best_idx])
        for start, size in runs_of_flags(flags[best_idx])
        if start > 0 and start + size < n
    ]
