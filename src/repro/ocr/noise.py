"""OCR noise primitives: character confusions and word corruption."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

#: Classic glyph confusions (symmetric pairs listed one way).
CONFUSIONS: Dict[str, str] = {
    "l": "1", "1": "l", "I": "l", "i": "l",
    "O": "0", "0": "O", "o": "0",
    "S": "5", "5": "S", "s": "5",
    "B": "8", "8": "B",
    "Z": "2", "2": "Z",
    "g": "9", "9": "g",
    "e": "c", "c": "e",
    "a": "o", "u": "v", "v": "u",
    "n": "h", "h": "b", "t": "f", "f": "t",
    "G": "C", "C": "G", "E": "F",
    "D": "O", "Q": "O",
}

#: Multi-character confusions applied at lower probability.
MULTI_CONFUSIONS: List[Tuple[str, str]] = [
    ("rn", "m"),
    ("m", "rn"),
    ("cl", "d"),
    ("vv", "w"),
    ("w", "vv"),
    ("ii", "u"),
]


def corrupt_word(word: str, rng: np.random.Generator, char_p: float, case_p: float) -> str:
    """Apply character-level OCR noise to one word.

    ``char_p`` — per-character confusion probability; ``case_p`` —
    per-character case-flip probability.  Multi-character confusions
    fire at ``char_p / 4`` per eligible position.
    """
    if char_p <= 0 and case_p <= 0:
        return word
    chars = list(word)
    i = 0
    out: List[str] = []
    while i < len(chars):
        replaced = False
        if rng.random() < char_p / 4.0:
            pair = chars[i] + (chars[i + 1] if i + 1 < len(chars) else "")
            for src, dst in MULTI_CONFUSIONS:
                if pair.startswith(src):
                    out.append(dst)
                    i += len(src)
                    replaced = True
                    break
        if replaced:
            continue
        ch = chars[i]
        if rng.random() < char_p and ch in CONFUSIONS:
            ch = CONFUSIONS[ch]
        if rng.random() < case_p and ch.isalpha():
            ch = ch.lower() if ch.isupper() else ch.upper()
        out.append(ch)
        i += 1
    result = "".join(out)
    return result if result else word
