"""The simulated OCR engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.doc import Document
from repro.doc.document import group_into_lines, join_in_reading_order
from repro.doc.elements import TextElement
from repro.geometry import BBox
from repro.ocr.noise import corrupt_word
from repro.resilience.faults import fault_site


def _stable_hash(text: str) -> int:
    """Process-independent 31-bit hash (``hash()`` is randomised)."""
    import zlib

    return zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF


@dataclass(frozen=True)
class NoiseProfile:
    """Noise parameters of one transcription condition."""

    char_p: float  # per-character confusion probability
    case_p: float  # per-character case-flip probability
    drop_p: float  # per-word drop probability
    split_p: float  # per-word split probability
    merge_p: float  # per-adjacent-pair merge probability
    jitter: float  # bbox jitter in layout units

    @staticmethod
    def for_source(source: str) -> "NoiseProfile":
        """Profile by document source kind.

        ``mobile`` captures are the paper's low-quality transcriptions;
        ``html`` documents transcribe essentially losslessly (their text
        comes from markup, not pixels).
        """
        if source == "mobile":
            return NoiseProfile(0.06, 0.02, 0.04, 0.02, 0.02, 1.2)
        if source == "scan":
            return NoiseProfile(0.02, 0.005, 0.01, 0.01, 0.01, 0.8)
        if source == "pdf":
            return NoiseProfile(0.005, 0.001, 0.002, 0.002, 0.002, 0.3)
        if source == "html":
            return NoiseProfile(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        raise ValueError(f"unknown source kind {source!r}")


@dataclass
class OcrResult:
    """The transcription of one document.

    ``words`` are :class:`TextElement` objects carrying the *noisy*
    text and jittered boxes — what a downstream pipeline actually sees.
    """

    doc_id: str
    width: float
    height: float
    words: List[TextElement]
    source: str

    def full_text(self) -> str:
        """Whole-page reading-order linearisation.

        Lines are formed across the entire page, so side-by-side
        columns interleave — the context destruction Fig. 3 shows.
        """
        return join_in_reading_order(self.words)

    def text_in(self, frame: BBox, min_overlap: float = 0.5) -> str:
        """Reading-order text of the OCR words inside ``frame``."""
        inside = []
        for w in self.words:
            inter = w.bbox.intersection(frame)
            if inter is not None and w.bbox.area > 0 and inter.area / w.bbox.area >= min_overlap:
                inside.append(w)
        return join_in_reading_order(inside)

    def as_document(self, original: Document) -> Document:
        """The *observed* document: OCR words as elements, original
        images kept (a layout analyser sees them as ink), **no ground
        truth** — extraction pipelines must run on this view."""
        return Document(
            doc_id=self.doc_id,
            width=self.width,
            height=self.height,
            elements=list(self.words) + list(original.image_elements),
            annotations=[],
            source=original.source,
            dataset=original.dataset,
            html=original.html,
            background=original.background,
            metadata=dict(original.metadata),
        )


class OcrEngine:
    """Word-level OCR simulation.

    Deterministic given ``seed`` and the document id, so a corpus
    transcribes identically across runs.
    """

    def __init__(self, seed: int = 0, profiles: Optional[Dict[str, NoiseProfile]] = None):
        self.seed = seed
        self.profiles = profiles or {}

    def profile_for(self, doc: Document) -> NoiseProfile:
        """The noise profile for this document (override or per-source)."""
        if doc.source in self.profiles:
            return self.profiles[doc.source]
        return NoiseProfile.for_source(doc.source)

    def transcribe(self, doc: Document) -> OcrResult:  # exc: boundary - public API; faults propagate unless run supervised
        """Transcribe one document under its source's noise profile."""
        fault = fault_site("ocr.transcribe")
        rng = np.random.default_rng((self.seed, _stable_hash(doc.doc_id)))
        profile = self.profile_for(doc)
        words: List[TextElement] = []

        lines = group_into_lines(doc.text_elements)
        for line in lines:
            i = 0
            while i < len(line):
                element = line[i]
                if rng.random() < profile.drop_p:
                    i += 1
                    continue
                # merge with the next word on the line
                if (
                    i + 1 < len(line)
                    and rng.random() < profile.merge_p
                    and line[i + 1].bbox.x - element.bbox.x2 < element.font_size
                ):
                    nxt = line[i + 1]
                    merged_text = element.text + nxt.text
                    merged_box = element.bbox.union(nxt.bbox)
                    element = element.with_text(merged_text).with_bbox(merged_box)
                    i += 2
                else:
                    i += 1
                for piece in self._split_maybe(element, rng, profile):
                    noisy = corrupt_word(piece.text, rng, profile.char_p, profile.case_p)
                    box = self._jitter_box(piece.bbox, rng, profile.jitter, doc)
                    words.append(piece.with_text(noisy).with_bbox(box))
        if fault is not None and fault.kind == "corrupt":
            words = fault.corrupt_words(words)
        return OcrResult(doc.doc_id, doc.width, doc.height, words, doc.source)

    @staticmethod
    def _split_maybe(
        element: TextElement, rng: np.random.Generator, profile: NoiseProfile
    ) -> List[TextElement]:
        text = element.text
        if len(text) < 4 or rng.random() >= profile.split_p:
            return [element]
        cut = int(rng.integers(2, len(text) - 1))
        frac = cut / len(text)
        left, right = element.bbox.hsplit(frac, gap=1.0)
        return [
            element.with_text(text[:cut]).with_bbox(left),
            element.with_text(text[cut:]).with_bbox(right),
        ]

    @staticmethod
    def _jitter_box(
        box: BBox, rng: np.random.Generator, jitter: float, doc: Document
    ) -> BBox:
        if jitter <= 0:
            return box
        dx = float(rng.uniform(-jitter, jitter))
        dy = float(rng.uniform(-jitter, jitter))
        dw = float(rng.uniform(-jitter, jitter))
        dh = float(rng.uniform(-jitter / 2, jitter / 2))
        return BBox(
            min(max(box.x + dx, -doc.width * 0.2), doc.width * 1.2),
            min(max(box.y + dy, -doc.height * 0.2), doc.height * 1.2),
            max(box.w + dw, 1.0),
            max(box.h + dh, 1.0),
        )
