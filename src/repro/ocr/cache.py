"""Memoisation of the expensive clean step (OCR transcription + deskew).

Transcription is the slowest stage of the pipeline and — being seeded
by ``(engine.seed, doc_id)`` — perfectly repeatable, so re-running it
for every algorithm/table/benchmark is pure waste.
:class:`TranscriptionCache` memoises the full clean step keyed by
``(engine seed, doc_id)`` and is shared between :class:`~repro.core.
pipeline.VS2Pipeline` and the experiment harness: hand the same cache
to both and a corpus is transcribed exactly once per process.

The cache lives in :mod:`repro.ocr` — the layer that owns the clean
step — so the pipeline can import it without depending on
``repro.perf`` (layering rule ``LAYER001``); :mod:`repro.perf.cache`
re-exports it under the historical path.

The cache is thread-safe (a lock guards the dict) but intentionally
per-process: the parallel :class:`repro.perf.runner.CorpusRunner`
gives each worker its own cache, which is correct because transcription
is deterministic — two processes transcribing the same document produce
identical results, they just don't share the saved work.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.ocr.deskew import deskew
from repro.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.doc import Document
    from repro.instrument import PipelineMetrics
    from repro.ocr import OcrEngine, OcrResult

#: What the clean step produces for one document: the raw transcription,
#: the deskewed observed view, and the estimated skew angle (degrees).
CleanedView = Tuple["OcrResult", "Document", float]


def transcribe_and_clean(
    engine: "OcrEngine",
    doc: "Document",
    metrics: Optional["PipelineMetrics"] = None,
    tracer: Optional[Tracer] = None,
) -> CleanedView:
    """The uncached clean step: transcribe then deskew, instrumented.

    This is the single implementation both the cache's miss path and
    the cache-less pipeline call, so the two paths cannot drift.
    """
    if tracer is None:
        tracer = NULL_TRACER
    if metrics is None:
        with tracer.span("ocr"):
            ocr = engine.transcribe(doc)
        with tracer.span("deskew"):
            observed, angle = deskew(ocr.as_document(doc))
        return ocr, observed, angle
    with metrics.stage("ocr") as t, tracer.span("ocr") as sp:
        ocr = engine.transcribe(doc)
        t.items = len(ocr.words)
        sp.attrs["words"] = len(ocr.words)
    with metrics.stage("deskew"), tracer.span("deskew"):
        observed, angle = deskew(ocr.as_document(doc))
    return ocr, observed, angle


class TranscriptionCache:
    """Process-local memo of the clean step, keyed ``(seed, doc_id)``.

    ``seed`` is part of the key so one cache may serve engines with
    different noise seeds (e.g. the pipeline's configured engine and a
    test's ad-hoc engine) without cross-talk.
    """

    def __init__(self, max_entries: Optional[int] = None):
        #: Optional bound on resident entries; ``None`` means unbounded.
        #: Eviction is FIFO — corpora are processed in passes, so the
        #: oldest entry is also the least likely to be needed again.
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[int, str], CleanedView] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def cleaned(
        self,
        engine: "OcrEngine",
        doc: "Document",
        metrics: Optional["PipelineMetrics"] = None,
        tracer: Optional[Tracer] = None,
    ) -> CleanedView:
        """Return the (memoised) cleaned view of ``doc``.

        On a hit the stored view is returned as-is and an
        ``ocr.cache_hit`` event is counted; on a miss the clean step
        runs under its ``ocr``/``deskew`` timers and the result is
        stored.  Either way an ``ocr.cache`` trace event records the
        outcome.
        """
        if tracer is None:
            tracer = NULL_TRACER
        key = (engine.seed, doc.doc_id)
        with self._lock:
            cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            if metrics is not None:
                metrics.count("ocr.cache_hit")
            if tracer.enabled:
                tracer.event("ocr.cache", hit=True, doc_id=doc.doc_id)
            return cached
        if tracer.enabled:
            tracer.event("ocr.cache", hit=False, doc_id=doc.doc_id)
        view = transcribe_and_clean(engine, doc, metrics, tracer=tracer)
        with self._lock:
            self.misses += 1
            if self.max_entries is not None and len(self._entries) >= self.max_entries:
                oldest = next(iter(self._entries), None)
                if oldest is not None:
                    del self._entries[oldest]
            self._entries[key] = view
        return view

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}
