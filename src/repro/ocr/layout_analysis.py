"""Tesseract-style hierarchical layout analysis (baseline A5).

Tesseract's page analysis groups ink into text lines and merges
vertically adjacent, horizontally overlapping lines into blocks.  This
reimplementation does the same over word boxes: lines by vertical
centroid proximity, blocks by a proximity/overlap merge with thresholds
proportional to line height.  It is deliberately blind to colour, font
size and semantics — which is why it under-performs VS2-Segment on
visually rich pages while staying competitive on plain ones (Table 5).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.doc import Document
from repro.doc.document import group_into_lines
from repro.doc.elements import TextElement
from repro.geometry import BBox, enclosing_bbox


def _line_boxes(words: Sequence[TextElement], split_gap_ratio: float = 2.5) -> List[BBox]:
    """Line boxes, split at large horizontal gaps.

    Page-wide line grouping joins side-by-side columns; Tesseract's
    analysis separates them, so a line breaks wherever the gap between
    consecutive words exceeds ``split_gap_ratio`` × the line height.
    """
    boxes: List[BBox] = []
    for line in group_into_lines(words):
        segment: List[TextElement] = [line[0]]
        height = max(w.bbox.h for w in line)
        for w in line[1:]:
            if w.bbox.x - segment[-1].bbox.x2 > split_gap_ratio * height:
                boxes.append(enclosing_bbox([s.bbox for s in segment]))
                segment = [w]
            else:
                segment.append(w)
        boxes.append(enclosing_bbox([s.bbox for s in segment]))
    return boxes


def _x_overlap(a: BBox, b: BBox) -> float:
    return max(0.0, min(a.x2, b.x2) - max(a.x, b.x))


def tesseract_blocks(
    doc: Document,
    vertical_gap_ratio: float = 0.9,
    min_x_overlap_ratio: float = 0.3,
) -> List[BBox]:
    """Block proposals for ``doc``.

    Parameters
    ----------
    vertical_gap_ratio:
        Two lines merge when their vertical gap is below this multiple
        of the taller line's height.
    min_x_overlap_ratio:
        ... and their horizontal overlap is at least this fraction of
        the narrower line.
    """
    words = doc.text_elements
    if not words:
        return []
    lines = _line_boxes(words)
    lines.sort(key=lambda b: (b.y, b.x))

    blocks: List[List[BBox]] = []
    for line in lines:
        merged = False
        for block in blocks:
            anchor = block[-1]
            gap = line.y - anchor.y2
            max_gap = vertical_gap_ratio * max(anchor.h, line.h)
            overlap = _x_overlap(enclosing_bbox(block), line)
            need = min_x_overlap_ratio * min(enclosing_bbox(block).w, line.w)
            if gap <= max_gap and gap >= -anchor.h and overlap >= max(need, 1.0):
                block.append(line)
                merged = True
                break
        if not merged:
            blocks.append([line])
    return [enclosing_bbox(block) for block in blocks]
