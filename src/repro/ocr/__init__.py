"""Simulated OCR (the Tesseract [41] stand-in).

The paper's pipeline runs on OCR output, and its error analysis keys on
transcription quality: low-quality transcription causes
over-segmentation by inhibiting semantic merging (§6.3) and floods the
text-only baseline with NER false positives (Fig. 3).  This package
reproduces those effects:

* :class:`OcrEngine` — word-level transcription with a configurable
  noise model (character confusions, case flips, word drops/splits/
  merges, bounding-box jitter) keyed to the document's source kind
  (``mobile`` ≫ ``scan`` > ``pdf``/``html``);
* :class:`OcrResult` — the transcription: noisy word elements, a
  whole-page reading-order linearisation (which destroys column
  context — the text-only failure mode), and per-region text;
* :mod:`repro.ocr.layout_analysis` — a Tesseract-style page layout
  analyser (lines → blocks), used as segmentation baseline A5 and as
  the text-only extraction baseline's segmenter.
"""

from repro.ocr.engine import NoiseProfile, OcrEngine, OcrResult
from repro.ocr.deskew import deskew, estimate_skew, rotate_back
from repro.ocr.layout_analysis import tesseract_blocks

__all__ = [
    "OcrEngine",
    "OcrResult",
    "NoiseProfile",
    "tesseract_blocks",
    "deskew",
    "estimate_skew",
    "rotate_back",
]
