"""Skew estimation and correction — the paper's *cleaning* step.

§1 (Example 1.1) lists "perspective warping, skew correction, and
binarization" as the cleaning every pipeline performs before
transcription.  Mobile captures in D2 are rotated; this module
estimates the dominant text angle from word geometry and rotates the
element boxes upright.  The estimator is deliberately imperfect (it
fits discrete line groups on noisy boxes), leaving a residual skew of
a degree or two — the slack VS2's slanted cuts absorb and rigid
axis-aligned baselines do not.

Because correction rotates coordinates, results computed on the
corrected frame must be mapped back with :func:`rotate_back` before
comparison against ground truth in the original frame.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.doc import Document
from repro.doc.elements import ImageElement, TextElement
from repro.geometry import BBox


def estimate_skew(doc: Document) -> float:
    """Dominant text angle in radians (positive = clockwise page tilt).

    Words are greedily chained left-to-right into line fragments (each
    word linked to its nearest right-neighbour at compatible height);
    the median fragment slope is the skew estimate.
    """
    words = sorted(doc.text_elements, key=lambda w: (w.bbox.x, w.bbox.y))
    if len(words) < 6:
        return 0.0
    slopes: List[float] = []
    for i, w in enumerate(words):
        cx, cy = w.bbox.centroid
        best = None
        for v in words[i + 1 : i + 24]:
            vx, vy = v.bbox.centroid
            dx = vx - cx
            if dx <= 0 or dx > 6.0 * w.bbox.h:
                continue
            dy = vy - cy
            if abs(dy) > 0.8 * w.bbox.h:
                continue
            if abs(v.bbox.h - w.bbox.h) > 0.5 * max(v.bbox.h, w.bbox.h):
                continue
            if best is None or dx < best[0]:
                best = (dx, dy)
        if best is not None and best[0] > 1.0:
            slopes.append(best[1] / best[0])
    if len(slopes) < 4:
        return 0.0
    return float(math.atan(np.median(slopes)))


def deskew(doc: Document) -> Tuple[Document, float]:
    """A skew-corrected copy of ``doc`` plus the applied angle.

    Every element box rotates by the negative estimated skew about the
    page centre.  Annotations are *not* carried over (cleaning is part
    of the extraction pipeline, which never sees ground truth).
    """
    angle = estimate_skew(doc)
    if abs(angle) < math.radians(0.5):
        return doc, 0.0
    cx, cy = doc.width / 2.0, doc.height / 2.0
    elements = []
    for e in doc.elements:
        box = _tight_unrotate(e.bbox, angle, cx, cy)
        if isinstance(e, TextElement):
            elements.append(e.with_bbox(box))
        else:
            elements.append(ImageElement(e.image_data, box, e.color))
    corrected = Document(
        doc_id=doc.doc_id,
        width=doc.width,
        height=doc.height,
        elements=elements,
        annotations=[],
        source=doc.source,
        dataset=doc.dataset,
        html=doc.html,
        background=doc.background,
        metadata=dict(doc.metadata),
    )
    return corrected, angle


def _tight_unrotate(box: BBox, angle: float, cx: float, cy: float) -> BBox:  # frame: original -> observed
    """Upright box of the content whose *rotated enclosure* is ``box``.

    A box observed on a page tilted by ``angle`` is the axis-aligned
    enclosure of the rotated upright content: ``E.w = w·cosθ + h·sinθ``
    and ``E.h = w·sinθ + h·cosθ``.  Rotating the enclosure back would
    inflate it a second time (and eat the whitespace between areas), so
    we instead rotate the centroid and invert the linear system for the
    tight upright dimensions — what re-OCR after image deskewing would
    produce.
    """
    c = math.cos(abs(angle))
    s = math.sin(abs(angle))
    det = c * c - s * s
    if det <= 0.1:  # |angle| approaching 45°: inversion is ill-posed
        return box.rotate(-angle, cx, cy)
    w = max((box.w * c - box.h * s) / det, 1.0)
    h = max((box.h * c - box.w * s) / det, 1.0)
    px, py = box.centroid
    qx = cx + (px - cx) * math.cos(-angle) - (py - cy) * math.sin(-angle)
    qy = cy + (px - cx) * math.sin(-angle) + (py - cy) * math.cos(-angle)
    return BBox(qx - w / 2.0, qy - h / 2.0, w, h)


def rotate_back(box: BBox, angle: float, doc: Document) -> BBox:  # frame: observed -> original
    """Map a box from the corrected frame to the original frame."""
    if angle == 0.0:
        # Zero angle: the two frames coincide and the observed box *is*
        # the original one, so returning it unconverted is sound.
        return box  # noqa: FRAME102
    return box.rotate(angle, doc.width / 2.0, doc.height / 2.0)
