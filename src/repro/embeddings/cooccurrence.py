"""Trainable co-occurrence embeddings (PPMI + truncated SVD).

The from-scratch counterpart of *training* Word2Vec on a corpus.
Levy & Goldberg showed skip-gram with negative sampling implicitly
factorises a shifted PMI matrix, so PPMI + SVD is the standard
closed-form stand-in: build a windowed co-occurrence matrix, weight it
by positive pointwise mutual information, and factorise.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.embeddings.vectors import cosine_similarity
from repro.nlp.tokenizer import words as tokenize_words


class SvdEmbedding:
    """Embeddings for a fixed vocabulary, produced by :func:`train_svd_embedding`."""

    def __init__(self, vocabulary: Sequence[str], matrix: np.ndarray):
        if len(vocabulary) != matrix.shape[0]:
            raise ValueError("vocabulary / matrix size mismatch")
        self.vocabulary = list(vocabulary)
        self.matrix = matrix
        self._index: Dict[str, int] = {w: i for i, w in enumerate(self.vocabulary)}

    @property
    def dim(self) -> int:
        return self.matrix.shape[1]

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._index

    def embed(self, word: str) -> np.ndarray:
        """Vector for ``word``; zero vector when out of vocabulary."""
        idx = self._index.get(word.lower())
        if idx is None:
            return np.zeros(self.dim)
        return self.matrix[idx]

    def embed_text(self, text: str) -> np.ndarray:
        vecs = [self.embed(w) for w in tokenize_words(text) if w.lower() in self._index]
        if not vecs:
            return np.zeros(self.dim)
        return np.mean(vecs, axis=0)

    def similarity(self, a: str, b: str) -> float:
        return cosine_similarity(self.embed(a), self.embed(b))

    def most_similar(self, word: str, k: int = 5) -> List[str]:
        v = self.embed(word)
        norm = np.linalg.norm(v)
        if norm == 0:
            return []
        scores = self.matrix @ v
        norms = np.linalg.norm(self.matrix, axis=1) * norm
        with np.errstate(divide="ignore", invalid="ignore"):
            cos = np.where(norms > 0, scores / norms, 0.0)
        order = np.argsort(-cos)
        out = []
        for idx in order:
            candidate = self.vocabulary[idx]
            if candidate != word.lower():
                out.append(candidate)
            if len(out) == k:
                break
        return out


def train_svd_embedding(
    texts: Iterable[str],
    dim: int = 32,
    window: int = 4,
    min_count: int = 2,
    max_vocab: Optional[int] = 5000,
) -> SvdEmbedding:
    """Train PPMI + SVD embeddings on an iterable of texts.

    Parameters
    ----------
    texts:
        Corpus documents (e.g. holdout-corpus entries).
    dim:
        Embedding dimensionality (clipped to the vocabulary size).
    window:
        Symmetric co-occurrence window in tokens.
    min_count:
        Words rarer than this are dropped.
    max_vocab:
        Keep only the most frequent words (None = unbounded).
    """
    if dim < 1:
        raise ValueError("dim must be positive")
    token_lists = [tokenize_words(t) for t in texts]
    counts = Counter(w for toks in token_lists for w in toks)
    vocab = [w for w, c in counts.most_common(max_vocab) if c >= min_count]
    if not vocab:
        raise ValueError("corpus too small: empty vocabulary after filtering")
    index = {w: i for i, w in enumerate(vocab)}
    n = len(vocab)

    cooc = np.zeros((n, n))
    for toks in token_lists:
        ids = [index.get(w, -1) for w in toks]
        for i, wi in enumerate(ids):
            if wi < 0:
                continue
            for j in range(max(0, i - window), min(len(ids), i + window + 1)):
                wj = ids[j]
                if j == i or wj < 0:
                    continue
                cooc[wi, wj] += 1.0 / abs(i - j)  # distance-decayed counts

    total = cooc.sum()
    if total == 0:
        raise ValueError("corpus too small: no co-occurrences")
    row = cooc.sum(axis=1, keepdims=True)
    col = cooc.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        pmi = np.log((cooc * total) / (row @ col))
    ppmi = np.where(np.isfinite(pmi), np.maximum(pmi, 0.0), 0.0)

    k = min(dim, n - 1) if n > 1 else 1
    u, s, _ = np.linalg.svd(ppmi, full_matrices=False)
    vectors = u[:, :k] * np.sqrt(s[:k])[None, :]
    return SvdEmbedding(vocab, vectors)
