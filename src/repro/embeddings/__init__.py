"""Word embeddings — the pre-trained Word2Vec stand-in.

VS2 uses a pre-trained Word2Vec model [26] in two places: the semantic
contribution of Eq. 1 (semantic merging) and the ΔSim term of Eq. 2
(multimodal disambiguation).  Both only need a stable notion of cosine
similarity in which semantically related words score high.  We provide:

* :class:`HashEmbedding` — deterministic character-n-gram hashing,
  robust to OCR character noise (a garbled word stays near its clean
  form);
* :class:`TopicEmbedding` — lexicon-driven topical components so that
  words from the same semantic field (times, addresses, contact info,
  property attributes, ...) cluster;
* :class:`WordEmbedding` — the blend of the two, the default model;
* :func:`train_svd_embedding` — a trainable PPMI + SVD co-occurrence
  embedder, the from-scratch counterpart of training Word2Vec on a
  corpus, used by tests and ablations.
"""

from repro.embeddings.vectors import (
    HashEmbedding,
    TopicEmbedding,
    WordEmbedding,
    cosine_similarity,
    default_embedding,
)
from repro.embeddings.cooccurrence import SvdEmbedding, train_svd_embedding

__all__ = [
    "HashEmbedding",
    "TopicEmbedding",
    "WordEmbedding",
    "cosine_similarity",
    "default_embedding",
    "SvdEmbedding",
    "train_svd_embedding",
]
