"""Static word embeddings: hashing + topical components.

Design constraints (from how Eq. 1 / Eq. 2 use the model):

* deterministic — same word, same vector, across processes and runs;
* OCR-robust — a word with one or two garbled characters should stay
  close to its clean form (character n-gram hashing gives this);
* topically coherent — words of one semantic field should be mutually
  closer than words of different fields (topic lexicons give this).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.nlp import gazetteers as gaz
from repro.nlp.tokenizer import words as tokenize_words

DIM = 64


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine of two vectors; 0 when either is a zero vector."""
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


@lru_cache(maxsize=65536)
def _stable_unit_vector(key: str, dim: int) -> np.ndarray:
    """A deterministic pseudo-random unit vector for ``key``.

    Derived from a SHA-256 digest so it is stable across Python hash
    randomisation and platforms.  Memoised — the digest + RNG round
    costs ~30 µs and the same n-gram keys recur across every word of a
    corpus.  Treat the returned array as read-only.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(dim)
    return v / np.linalg.norm(v)


class HashEmbedding:
    """Character n-gram hash embedding.

    A word's vector is the normalised sum of stable unit vectors of its
    padded character n-grams (n = 3..5, fastText-style).  Single-edit
    corruptions perturb only a few n-grams, so OCR-noised words remain
    close to their originals — the property semantic merging needs to
    survive low-quality transcription.
    """

    def __init__(self, dim: int = DIM, n_min: int = 3, n_max: int = 5):
        if n_min < 1 or n_max < n_min:
            raise ValueError("bad n-gram range")
        self.dim = dim
        self.n_min = n_min
        self.n_max = n_max
        self._cache: Dict[str, np.ndarray] = {}

    def _ngrams(self, word: str) -> List[str]:
        padded = f"<{word}>"
        grams = []
        for n in range(self.n_min, self.n_max + 1):
            grams.extend(padded[i : i + n] for i in range(max(len(padded) - n + 1, 0)))
        return grams or [padded]

    def embed(self, word: str) -> np.ndarray:
        key = word.lower()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        total = np.zeros(self.dim)
        for gram in self._ngrams(key):
            total += _stable_unit_vector("ng:" + gram, self.dim)
        norm = np.linalg.norm(total)
        vec = total / norm if norm > 0 else total
        self._cache[key] = vec
        return vec


#: Topic lexicons: semantic fields of the corpora's vocabulary.
_TOPIC_LEXICONS: Dict[str, frozenset] = {
    "person": gaz.FIRST_NAMES | gaz.LAST_NAMES | gaz.NAME_PREFIXES,
    "organization": gaz.ORG_SUFFIXES | gaz.ORG_HEAD_WORDS,
    "place": gaz.CITIES | gaz.STATES | gaz.STREET_SUFFIXES | gaz.STREET_NAMES | gaz.VENUE_WORDS,
    "time": gaz.MONTHS | gaz.WEEKDAYS | gaz.TIME_WORDS,
    "event": gaz.EVENT_WORDS,
    "property": gaz.PROPERTY_WORDS,
    "contact": gaz.CONTACT_WORDS,
}


class TopicEmbedding:
    """Lexicon-topic components.

    Each topic owns a stable unit direction; a word in a topic lexicon
    maps to that direction (a word in several lexicons gets their
    normalised sum; an unknown word gets the zero vector).
    """

    def __init__(self, dim: int = DIM, lexicons: Optional[Dict[str, frozenset]] = None):
        self.dim = dim
        self.lexicons = dict(_TOPIC_LEXICONS if lexicons is None else lexicons)
        self._directions = {
            topic: _stable_unit_vector("topic:" + topic, dim) for topic in self.lexicons
        }

    def topics_of(self, word: str) -> List[str]:
        lower = word.lower().strip(".,")
        return [t for t, lex in self.lexicons.items() if lower in lex]

    def embed(self, word: str) -> np.ndarray:
        topics = self.topics_of(word)
        if not topics:
            # Real distributional embeddings place ordinary prose words
            # in a common region, away from digits and rare names.  A
            # weak shared "prose" component reproduces that: any two
            # sentences have baseline similarity, topical sentences
            # more, while numbers and names contribute nothing.
            if word.isalpha() and len(word) > 2:
                return 0.5 * self._directions_for(["__prose__"])
            return np.zeros(self.dim)
        return self._directions_for(topics)

    def _directions_for(self, topics: Sequence[str]) -> np.ndarray:
        total = np.zeros(self.dim)
        for topic in topics:
            total += self._directions.get(topic, _stable_unit_vector("topic:" + topic, self.dim))
        norm = np.linalg.norm(total)
        return total / norm if norm > 0 else total


class WordEmbedding:
    """The default model: hash base + topic component.

    ``topic_weight`` balances morphological robustness against topical
    coherence; 0.6 empirically separates semantic fields while leaving
    headroom for OCR-noise matching.
    """

    def __init__(self, dim: int = DIM, topic_weight: float = 0.6):
        if not 0.0 <= topic_weight <= 1.0:
            raise ValueError("topic_weight must be in [0, 1]")
        self.dim = dim
        self.topic_weight = topic_weight
        self._hash = HashEmbedding(dim)
        self._topic = TopicEmbedding(dim)
        self._cache: Dict[str, np.ndarray] = {}

    def embed(self, word: str) -> np.ndarray:
        key = word.lower()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        base = self._hash.embed(key) * (1.0 - self.topic_weight)
        topic = self._topic.embed(key) * self.topic_weight
        vec = base + topic
        norm = np.linalg.norm(vec)
        if norm > 0:
            vec = vec / norm
        self._cache[key] = vec
        return vec

    def embed_text(self, text: str) -> np.ndarray:
        """Mean vector of the words of ``text`` (zero for empty text).

        Text is OCR-repaired first (the cleaning step): glyph-confused
        words would otherwise fall out of the topic lexicons and
        silently zero the semantic terms of Eq. 1 / Eq. 2.  Stopwords
        are dropped (§5.2's preprocessing) so function words do not
        dilute area-level similarity.
        """
        from repro.nlp.fuzzy import repair_ocr_text
        from repro.nlp.tokenizer import STOPWORDS

        word_list = tokenize_words(repair_ocr_text(text))
        content = [w for w in word_list if w not in STOPWORDS]
        word_list = content or word_list
        if not word_list:
            return np.zeros(self.dim)
        return np.mean([self.embed(w) for w in word_list], axis=0)

    def embed_words(self, word_list: Iterable[str]) -> np.ndarray:
        vecs = [self.embed(w) for w in word_list]
        if not vecs:
            return np.zeros(self.dim)
        return np.mean(vecs, axis=0)

    def similarity(self, a: str, b: str) -> float:
        return cosine_similarity(self.embed(a), self.embed(b))

    def text_similarity(self, a: str, b: str) -> float:
        return cosine_similarity(self.embed_text(a), self.embed_text(b))


_DEFAULT: Optional[WordEmbedding] = None


def default_embedding() -> WordEmbedding:  # conc: ambient - idempotent memo cache, safe to refill per process
    """Process-wide shared default model (cache reuse matters: Eq. 1 is
    evaluated for every node pair at every merge iteration)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = WordEmbedding()
    return _DEFAULT
