"""Dataset schemas: the fixed, code-level knowledge of D1/D2/D3.

The paper's three IE tasks are defined by *schemas* that both the
synthetic generators (:mod:`repro.synth`) and the extraction system
(:mod:`repro.core.select`) must agree on: the named-entity vocabulary
of each dataset, and -- for D1 -- the 20 deterministic form faces with
their ~1369 labelled field descriptors (\u00a75.2.1).

This module is the single home of that knowledge and sits *below* both
consumers in the layering order (it imports only numpy), so ``core``
never reaches into ``repro.synth`` for it (lint rule ``LAYER001``).
The generators re-export these names under their historical paths.

Everything here is deterministic: the face templates are seeded by the
fixed ``_FACE_SEED``, so two processes always build identical schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: The five annotated entity types of the D2 poster corpus.
D2_ENTITIES = (
    "event_title",
    "event_place",
    "event_time",
    "event_organizer",
    "event_description",
)

#: The six annotated entity types of the D3 real-estate flyer corpus.
D3_ENTITIES = (
    "broker_name",
    "broker_phone",
    "broker_email",
    "property_address",
    "property_size",
    "property_description",
)

D1_ENTITY_PREFIX = "d1_field"


_FACE_SEED = 0x1040
_N_FACES = 20
_TOTAL_FIELDS = 1369

_DESCRIPTOR_PHRASES = [
    "Wages salaries tips etc",
    "Taxable interest income",
    "Tax-exempt interest income",
    "Dividend income",
    "Taxable refunds of state taxes",
    "Alimony received",
    "Business income or loss",
    "Capital gain or loss",
    "Capital gain distributions",
    "Other gains or losses",
    "Total IRA distributions",
    "Taxable amount",
    "Total pensions and annuities",
    "Rents royalties partnerships",
    "Farm income or loss",
    "Unemployment compensation",
    "Social security benefits",
    "Other income",
    "Total income",
    "Reimbursed expenses",
    "Your IRA deduction",
    "Spouse IRA deduction",
    "Self-employment tax deduction",
    "Self-employed health insurance",
    "Keogh retirement plan",
    "Penalty on early withdrawal",
    "Alimony paid",
    "Adjusted gross income",
    "Standard deduction",
    "Itemized deductions",
    "Exemption amount",
    "Taxable income",
    "Tax amount",
    "Additional taxes",
    "Credit for child care",
    "Credit for the elderly",
    "Foreign tax credit",
    "General business credit",
    "Total credits",
    "Self-employment tax",
    "Alternative minimum tax",
    "Recapture taxes",
    "Household employment taxes",
    "Total tax",
    "Federal income tax withheld",
    "Estimated tax payments",
    "Earned income credit",
    "Amount paid with extension",
    "Excess social security",
    "Total payments",
    "Amount overpaid",
    "Amount to be refunded",
    "Applied to estimated tax",
    "Amount you owe",
    "Estimated tax penalty",
    "Medical and dental expenses",
    "State and local taxes",
    "Real estate taxes",
    "Personal property taxes",
    "Home mortgage interest",
    "Deductible points",
    "Investment interest",
    "Gifts by cash or check",
    "Gifts other than cash",
    "Carryover from prior year",
    "Casualty and theft losses",
    "Unreimbursed employee expenses",
    "Tax preparation fees",
    "Other miscellaneous deductions",
    "Gross receipts or sales",
    "Returns and allowances",
    "Cost of goods sold",
    "Gross profit",
    "Advertising expense",
    "Car and truck expenses",
    "Commissions and fees",
    "Depletion deduction",
    "Depreciation deduction",
    "Employee benefit programs",
    "Insurance other than health",
    "Mortgage interest paid",
    "Legal and professional services",
    "Office expense",
    "Pension and profit sharing",
    "Rent or lease payments",
    "Repairs and maintenance",
    "Supplies expense",
    "Taxes and licenses",
    "Travel expense",
    "Meals and entertainment",
    "Utilities expense",
    "Wages paid",
]

_VALUE_KINDS = ("money", "money", "money", "ssn", "name", "date", "check")

_FORM_TITLES = [
    "Form 1040 U.S. Individual Income Tax Return",
    "Schedule A Itemized Deductions",
    "Schedule B Interest and Dividend Income",
    "Schedule C Profit or Loss From Business",
    "Schedule D Capital Gains and Losses",
    "Schedule E Supplemental Income and Loss",
    "Schedule F Farm Income and Expenses",
    "Schedule R Credit for the Elderly",
    "Schedule SE Self-Employment Tax",
    "Form 2106 Employee Business Expenses",
    "Form 2441 Child and Dependent Care Expenses",
    "Form 3800 General Business Credit",
    "Form 4136 Credit for Federal Tax on Fuels",
    "Form 4255 Recapture of Investment Credit",
    "Form 4562 Depreciation and Amortization",
    "Form 4684 Casualties and Thefts",
    "Form 4797 Sales of Business Property",
    "Form 6251 Alternative Minimum Tax",
    "Form 8283 Noncash Charitable Contributions",
    "Form 8606 Nondeductible IRA Contributions",
]


@dataclass(frozen=True)
class FormField:
    """One field of a form face template."""

    entity_type: str
    descriptor: str
    value_kind: str
    column: int  # 0 = left, 1 = right
    row: int


@dataclass(frozen=True)
class FormFace:
    """A deterministic form template."""

    face_id: int
    title: str
    fields: Tuple[FormField, ...]


def _fields_per_face() -> List[int]:
    base = _TOTAL_FIELDS // _N_FACES
    counts = [base] * _N_FACES
    for i in range(_TOTAL_FIELDS - base * _N_FACES):
        counts[i] += 1
    return counts


def build_faces() -> List[FormFace]:
    """The 20 deterministic form faces (seeded, stable across runs)."""
    faces: List[FormFace] = []
    counts = _fields_per_face()
    for face_id in range(_N_FACES):
        rng = np.random.default_rng((_FACE_SEED, face_id))
        n_fields = counts[face_id]
        order = rng.permutation(len(_DESCRIPTOR_PHRASES))
        fields: List[FormField] = []
        rows_per_col = (n_fields + 1) // 2
        for k in range(n_fields):
            phrase = _DESCRIPTOR_PHRASES[int(order[k % len(order)])]
            line_no = k + 1
            descriptor = f"{line_no} {phrase}"
            kind = _VALUE_KINDS[int(rng.integers(len(_VALUE_KINDS)))]
            fields.append(
                FormField(
                    entity_type=f"{D1_ENTITY_PREFIX}:{face_id:02d}:{line_no:03d}",
                    descriptor=descriptor,
                    value_kind=kind,
                    column=0 if k < rows_per_col else 1,
                    row=k if k < rows_per_col else k - rows_per_col,
                )
            )
        faces.append(FormFace(face_id, _FORM_TITLES[face_id], tuple(fields)))
    return faces


_FACES_CACHE: Optional[List[FormFace]] = None


def form_faces() -> List[FormFace]:  # conc: ambient - idempotent memo cache, safe to refill per process
    global _FACES_CACHE
    if _FACES_CACHE is None:
        _FACES_CACHE = build_faces()
    return _FACES_CACHE


def all_field_descriptors() -> Dict[str, str]:
    """entity_type → descriptor across all faces (the paper's list of
    1369 form fields)."""
    return {f.entity_type: f.descriptor for face in form_faces() for f in face.fields}


def entity_vocabulary(dataset: str) -> Sequence[str]:
    """The semantic vocabulary of each IE task."""
    dataset = dataset.upper()
    if dataset == "D2":
        return D2_ENTITIES
    if dataset == "D3":
        return D3_ENTITIES
    if dataset == "D1":
        return tuple(all_field_descriptors())
    raise ValueError(f"unknown dataset {dataset!r}")
