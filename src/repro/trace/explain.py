"""The ``repro explain`` decision report: ledgers rendered from a trace.

Given the span forest of one traced document run, render the chain of
per-document decisions the paper's pipeline makes:

* the **cut ledger** — every candidate cut set Algorithm 1 scored,
  with its normalised width, prefix correlation, and verdict;
* the **merge ledger** — every semantic-merge comparison (Eq. 1
  contribution vs the θ_h schedule) plus the per-pass fixpoint rows;
* the **Pareto table** — the §5.3.1 objective vector of every block,
  marking which survived non-dominated sorting as interest points;
* the **selection ledger** — per entity, how many candidates matched
  and which block won;
* the caller-supplied **extraction rows** (the CLI passes the final
  extractions with their source blocks);
* the **resilience ledger** — injected faults, degradation-ladder
  fallbacks and supervision decisions (retries, timeouts, quarantines),
  rendered only when such events occurred (docs/RESILIENCE.md).

Everything here is plain text formatting over :class:`~repro.trace.
tracer.Span` trees — no imports from the rest of ``repro`` — so the
report can be rendered from a live tracer or from a deserialised
worker buffer alike.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.trace.tracer import Span, TraceEvent


def collect_events(
    roots: Sequence[Span], name: Optional[str] = None
) -> List[Tuple[str, TraceEvent]]:
    """``(span_path, event)`` pairs, depth-first; ``name`` filters (a
    trailing ``.`` matches the whole event family, e.g. ``"merge."``)."""

    out: List[Tuple[str, TraceEvent]] = []

    def matches(event_name: str) -> bool:
        if name is None:
            return True
        if name.endswith("."):
            return event_name.startswith(name)
        return event_name == name

    def walk(span: Span, prefix: str) -> None:
        path = f"{prefix}/{span.label()}" if prefix else span.label()
        for event in span.events:
            if matches(event.name):
                out.append((path, event))
        for child in span.children:
            walk(child, path)

    for root in roots:
        walk(root, "")
    return out


def _format_value(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _table(title: str, headers: List[str], rows: List[List[Any]]) -> str:
    if not rows:
        return f"{title}\n{'-' * len(title)}\n  (no events recorded)"
    cells = [[_format_value(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) for i in range(len(headers))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  " + " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  " + "-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  "
            + " | ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def cut_ledger(roots: Sequence[Span]) -> str:
    """Algorithm 1's verdict on every candidate cut set."""
    rows = []
    for path, event in collect_events(roots, "cut.decision"):
        a = event.attrs
        rows.append(
            [
                a.get("orientation", "?"),
                a.get("position"),
                a.get("span_units"),
                a.get("normalized_width"),
                a.get("correlation"),
                a.get("floor"),
                bool(a.get("accepted")),
                a.get("reason", ""),
            ]
        )
    return _table(
        "Cut ledger (Algorithm 1)",
        ["orient", "pos", "span", "norm w", "corr", "floor", "accepted", "reason"],
        rows,
    )


def merge_ledger(roots: Sequence[Span]) -> str:
    """Semantic-merge comparisons (Eq. 1) and fixpoint passes."""
    rows = []
    for path, event in collect_events(roots, "merge."):
        a = event.attrs
        if event.name == "merge.pass":
            rows.append(
                ["pass", a.get("height"), a.get("theta"), None, None,
                 f"{a.get('merges', 0)} merge(s)", ""]
            )
        else:
            rows.append(
                [
                    "node",
                    a.get("height"),
                    a.get("theta"),
                    a.get("sc"),
                    a.get("sim"),
                    a.get("node", ""),
                    "merged with " + str(a.get("partner"))
                    if a.get("merged")
                    else a.get("reason", "kept"),
                ]
            )
    return _table(
        "Merge ledger (Eq. 1, θ_h schedule)",
        ["kind", "h", "θ_h", "SC", "sim", "node", "outcome"],
        rows,
    )


def pareto_table(roots: Sequence[Span]) -> str:
    """Objective vectors behind the interest-point Pareto front."""
    rows = []
    for path, event in collect_events(roots, "pareto.front"):
        for block in event.attrs.get("blocks", []):
            rows.append(
                [
                    block.get("index"),
                    block.get("height"),
                    block.get("coherence"),
                    block.get("density"),
                    bool(block.get("selected")),
                ]
            )
    return _table(
        "Pareto front (§5.3.1 objectives)",
        ["block", "height", "coherence", "density", "interest point"],
        rows,
    )


def selection_ledger(roots: Sequence[Span]) -> str:
    """Per-entity search-and-select outcomes."""
    rows = []
    for path, event in collect_events(roots, "select.decision"):
        a = event.attrs
        rows.append(
            [
                a.get("entity", "?"),
                a.get("candidates"),
                bool(a.get("matched")),
                a.get("block"),
                a.get("text", ""),
            ]
        )
    return _table(
        "Selection ledger",
        ["entity", "candidates", "matched", "block", "text"],
        rows,
    )


def resilience_ledger(roots: Sequence[Span]) -> str:
    """Every fault injected and every supervision decision taken:
    ``fault.injected``, ``pipeline.degrade`` and the ``runner.*``
    family (retry / timeout / quarantine / worker_replace / resume /
    degrade) rendered as one chronology."""
    rows = []
    for _path, event in collect_events(roots):
        a = event.attrs
        if event.name == "fault.injected":
            rows.append(
                ["fault", a.get("doc_id", ""), a.get("attempt"),
                 f"{a.get('kind', '?')} @ {a.get('site', '?')}"]
            )
        elif event.name == "pipeline.degrade":
            rows.append(
                ["degrade", "", None,
                 f"{a.get('stage', '?')} -> {a.get('fallback', '?')} "
                 f"({a.get('error_type', '?')})"]
            )
        elif event.name.startswith("runner."):
            kind = event.name[len("runner."):]
            detail = a.get("error_type") or a.get("reason") or ""
            rows.append([kind, a.get("doc_id", ""), a.get("attempt"), detail])
    return _table(
        "Resilience ledger (faults & supervision)",
        ["kind", "doc", "attempt", "detail"],
        rows,
    )


def explain_report(
    roots: Sequence[Span],
    extraction_rows: Optional[List[Dict[str, Any]]] = None,
    title: str = "Decision report",
) -> str:
    """The full human-readable report for one traced document run.

    ``extraction_rows`` (optional) are the final extractions with
    their source blocks — free-form dicts whose keys become columns.
    """
    cache_events = collect_events(roots, "ocr.cache")
    hits = sum(1 for _, e in cache_events if e.attrs.get("hit"))
    sections = [
        title,
        "=" * len(title),
        f"spans: {sum(1 for r in roots for _ in r.walk())}  "
        f"decision events: {len(collect_events(roots))}  "
        f"ocr cache: {hits} hit(s) / {len(cache_events) - hits} miss(es)",
        "",
        cut_ledger(roots),
        "",
        merge_ledger(roots),
        "",
        pareto_table(roots),
        "",
        selection_ledger(roots),
    ]
    resilience_events = [
        e for _p, e in collect_events(roots)
        if e.name in ("fault.injected", "pipeline.degrade")
        or e.name.startswith("runner.")
    ]
    if resilience_events:
        sections += ["", resilience_ledger(roots)]
    if extraction_rows is not None:
        headers = sorted({k for row in extraction_rows for k in row})
        rows = [[row.get(h) for h in headers] for row in extraction_rows]
        sections += ["", _table("Final extractions", headers, rows)]
    return "\n".join(sections)
