"""Hierarchical tracing and decision events for the VS2 pipeline.

This package is the repo's observability layer: where
:mod:`repro.instrument` answers *how long* each stage took in
aggregate, :mod:`repro.trace` answers *what happened* to one document —
which candidate cuts Algorithm 1 accepted, which sibling blocks merged
under θ_h, which interest points survived the Pareto front, which
transcriptions came from cache.

Like :mod:`repro.instrument`, it sits at the *base* of the layering
order — it imports nothing from the rest of :mod:`repro` — so
``repro.core`` can emit spans and decision events without violating
the ``LAYER001`` rule, and the perf runner can ship span buffers
across process boundaries without cycles.

Four modules:

* :mod:`repro.trace.tracer` — :class:`Tracer` (hierarchical spans +
  decision events, thread-safe buffer) and :data:`NULL_TRACER` (the
  no-op handle hot paths run against when tracing is off);
* :mod:`repro.trace.export` — JSONL event-log and Chrome
  ``trace_event`` exporters (loadable in Perfetto /
  ``chrome://tracing``), both with deterministic timestamp
  normalisation for byte-identity tests;
* :mod:`repro.trace.explain` — the human-readable decision report
  behind ``python -m repro explain`` (cut ledger, merge ledger,
  Pareto table);
* :mod:`repro.trace.ledger` — the canonical ``cut.decision`` ledger
  and its diff, the byte-equivalence oracle of the ``segment.cuts``
  fast path (docs/PERFORMANCE.md).

See ``docs/TRACING.md`` for the span model and event schema.
"""

from repro.trace.explain import collect_events, explain_report
from repro.trace.ledger import cut_ledger, ledger_diff, ledger_lines
from repro.trace.export import (
    chrome_trace_events,
    jsonl_lines,
    validate_chrome_trace,
    validate_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.trace.tracer import (
    EVENT_NAMES,
    NULL_TRACER,
    NullTracer,
    Span,
    TraceEvent,
    Tracer,
)

__all__ = [
    "EVENT_NAMES",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceEvent",
    "Tracer",
    "chrome_trace_events",
    "collect_events",
    "cut_ledger",
    "explain_report",
    "jsonl_lines",
    "ledger_diff",
    "ledger_lines",
    "validate_chrome_trace",
    "validate_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
