"""Trace exporters: JSONL event log and Chrome ``trace_event`` JSON.

Two output formats, one span forest in:

* **JSONL** — one JSON object per line, depth-first:
  ``span_start`` / ``event`` / ``span_end`` records, each carrying the
  full span path (``corpus/doc[0]/segment/segment.cuts``).  Greppable,
  streamable, and the format the determinism tests byte-compare.
* **Chrome trace_event** — ``{"traceEvents": [...]}`` with complete
  (``ph: "X"``) events for spans and instant (``ph: "i"``) events for
  decisions, loadable in Perfetto or ``chrome://tracing``.  Every
  ``doc`` subtree is assigned its own track (``tid = doc index + 1``,
  the corpus shell on ``tid 0``) so re-parented worker spans — whose
  raw ``perf_counter`` readings come from different process epochs —
  stay readable side by side.

Both exporters accept ``normalize=True``, which replaces every
timestamp by a deterministic depth-first sequence number (and zeroes
the pid).  Normalised output depends only on the *decisions* the run
took, so a serial and a ``--workers 2`` run of the same seed produce
byte-identical files — the property ``tests/test_determinism.py``
locks in.

The ``validate_*`` helpers are the schema checks ``make trace-smoke``
and the bench-smoke marker run against fresh output; they raise
``ValueError`` with a pointed message rather than returning False, so
failures name the offending record.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterator, List, Sequence, Tuple, Union

from repro.trace.tracer import EVENT_NAMES, Span

#: Bumped when either export layout changes incompatibly.
EXPORT_SCHEMA = "repro.trace/1"

_MICRO = 1_000_000.0


class _Clock:
    """Timestamp source for one export pass: real microseconds, or a
    deterministic counter when normalising."""

    __slots__ = ("normalize", "_next")

    def __init__(self, normalize: bool):
        self.normalize = normalize
        self._next = 0

    def stamp(self, t_seconds: float) -> int:
        if self.normalize:
            tick = self._next
            self._next += 1
            return tick
        return int(round(t_seconds * _MICRO))


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------


def _jsonl_records(
    span: Span, prefix: str, clock: _Clock
) -> Iterator[Dict[str, Any]]:
    path = f"{prefix}/{span.label()}" if prefix else span.label()
    start = clock.stamp(span.t0)
    yield {
        "type": "span_start",
        "name": span.name,
        "path": path,
        "t": start,
        "attrs": span.attrs,
    }
    for event in span.events:
        yield {
            "type": "event",
            "name": event.name,
            "path": path,
            "t": clock.stamp(event.t),
            "attrs": event.attrs,
        }
    for child in span.children:
        yield from _jsonl_records(child, path, clock)
    end = clock.stamp(span.t1 if span.t1 else span.t0)
    yield {
        "type": "span_end",
        "name": span.name,
        "path": path,
        "t": end,
        "dur": end - start,
    }


def jsonl_lines(roots: Sequence[Span], normalize: bool = False) -> List[str]:
    """The event log as JSON lines (no trailing newline per entry).

    Keys are sorted so the byte stream is a pure function of the trace
    content; with ``normalize=True`` it is a pure function of the
    *decisions*, independent of wall time and process layout.
    """
    clock = _Clock(normalize)
    lines = [json.dumps({"schema": EXPORT_SCHEMA, "type": "header"}, sort_keys=True)]
    for root in roots:
        for record in _jsonl_records(root, "", clock):
            lines.append(json.dumps(record, sort_keys=True))
    return lines


def write_jsonl(
    path: Union[str, pathlib.Path], roots: Sequence[Span], normalize: bool = False
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(jsonl_lines(roots, normalize=normalize)) + "\n")
    return path


# ----------------------------------------------------------------------
# Chrome trace_event format
# ----------------------------------------------------------------------


def _chrome_walk(
    span: Span, tid: int, clock: _Clock, out: List[Dict[str, Any]]
) -> None:
    if span.name == "doc" and span.attrs.get("index") is not None:
        # One track per document: worker perf_counter epochs differ, but
        # within a doc subtree all readings share one process.
        tid = int(span.attrs["index"]) + 1
    start = clock.stamp(span.t0)
    events: List[Tuple[int, Dict[str, Any]]] = []
    for event in span.events:
        events.append(
            (
                clock.stamp(event.t),
                {
                    "name": event.name,
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": tid,
                    "cat": "decision",
                    "args": event.attrs,
                },
            )
        )
    for child in span.children:
        _chrome_walk(child, tid, clock, out)
    end = clock.stamp(span.t1 if span.t1 else span.t0)
    out.append(
        {
            "name": span.label(),
            "ph": "X",
            "ts": start,
            "dur": max(end - start, 0),
            "pid": 0,
            "tid": tid,
            "cat": "span",
            "args": span.attrs,
        }
    )
    for ts, record in events:
        record["ts"] = ts
        out.append(record)


def chrome_trace_events(
    roots: Sequence[Span], normalize: bool = False
) -> List[Dict[str, Any]]:
    """The span forest as Chrome ``trace_event`` records."""
    clock = _Clock(normalize)
    out: List[Dict[str, Any]] = []
    for root in roots:
        _chrome_walk(root, 0, clock, out)
    return out


def write_chrome_trace(
    path: Union[str, pathlib.Path], roots: Sequence[Span], normalize: bool = False
) -> pathlib.Path:
    """Write a ``chrome://tracing`` / Perfetto loadable JSON file."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": EXPORT_SCHEMA,
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(roots, normalize=normalize),
    }
    path.write_text(json.dumps(payload, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Validation (the trace-smoke / bench-smoke schema checks)
# ----------------------------------------------------------------------

_JSONL_TYPES = {"header", "span_start", "event", "span_end"}


def validate_chrome_trace(
    path: Union[str, pathlib.Path], strict_names: bool = False
) -> int:
    """Check a Chrome trace file's structure; returns the event count.

    Raises ``ValueError`` naming the first malformed record.  Checks:
    top-level shape, required keys per phase, numeric timestamps, and
    that at least one complete (``X``) span event exists.  With
    ``strict_names=True``, every decision (instant) event must also use
    a name registered in :data:`repro.trace.tracer.EVENT_NAMES` — the
    runtime complement of the static ``SCHEMA001`` check.
    """
    data = json.loads(pathlib.Path(path).read_text())
    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        raise ValueError(f"{path}: not a trace_event file (traceEvents missing)")
    spans = 0
    for i, record in enumerate(data["traceEvents"]):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(record, dict):
            raise ValueError(f"{where}: not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in record:
                raise ValueError(f"{where}: missing {key!r}")
        if not isinstance(record["ts"], (int, float)):
            raise ValueError(f"{where}: ts must be numeric")
        if record["ph"] == "X":
            spans += 1
            if not isinstance(record.get("dur"), (int, float)) or record["dur"] < 0:
                raise ValueError(f"{where}: complete event needs dur >= 0")
        elif record["ph"] == "i":
            if record.get("s") not in ("t", "p", "g"):
                raise ValueError(f"{where}: instant event needs scope s")
            if strict_names and record["name"] not in EVENT_NAMES:
                raise ValueError(
                    f"{where}: unregistered event name {record['name']!r} "
                    "(see repro.trace.tracer.EVENT_NAMES)"
                )
        else:
            raise ValueError(f"{where}: unexpected phase {record['ph']!r}")
    if spans == 0:
        raise ValueError(f"{path}: no span (ph=X) events")
    return len(data["traceEvents"])


def validate_jsonl(
    path: Union[str, pathlib.Path], strict_names: bool = False
) -> int:
    """Check a JSONL event log's structure; returns the record count.

    ``strict_names=True`` additionally requires every ``event`` record
    to use a registered :data:`~repro.trace.tracer.EVENT_NAMES` name.
    """
    lines = pathlib.Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty event log")
    open_paths: List[str] = []
    for i, line in enumerate(lines):
        where = f"{path}:{i + 1}"
        record = json.loads(line)
        kind = record.get("type")
        if kind not in _JSONL_TYPES:
            raise ValueError(f"{where}: unexpected record type {kind!r}")
        if kind == "header":
            continue
        for key in ("name", "path", "t"):
            if key not in record:
                raise ValueError(f"{where}: missing {key!r}")
        if kind == "span_start":
            open_paths.append(record["path"])
        elif kind == "span_end":
            if not open_paths or open_paths[-1] != record["path"]:
                raise ValueError(f"{where}: unbalanced span_end for {record['path']!r}")
            open_paths.pop()
        elif kind == "event":
            if record["path"] not in open_paths:
                raise ValueError(f"{where}: event outside its span {record['path']!r}")
            if strict_names and record["name"] not in EVENT_NAMES:
                raise ValueError(
                    f"{where}: unregistered event name {record['name']!r} "
                    "(see repro.trace.tracer.EVENT_NAMES)"
                )
    if open_paths:
        raise ValueError(f"{path}: unclosed span(s) {open_paths!r}")
    return len(lines)
