"""The ``cut.decision`` ledger — canonical form and diffing.

Algorithm 1 emits one ``cut.decision`` event per candidate cut set (in
topological order) carrying the orientation, position, normalised
width, physical floor and the verdict with its reason.  Serialised
canonically, the sequence of those events is a complete record of every
separator decision of a run — the **ledger**.

The ledger is the equivalence oracle of the ``segment.cuts`` fast path:
the prefix-sum projection profiles (:mod:`repro.geometry.profiles`)
must make *byte-identical* decisions to the naive grid rescan, so
``make bench-smoke`` runs the same corpus twice — fast and
``--naive-cuts`` — and requires :func:`ledger_diff` to come back empty
(see ``docs/PERFORMANCE.md`` for the protocol).

Like the rest of :mod:`repro.trace`, this module imports nothing from
the rest of :mod:`repro`, so any layer may use it.
"""

from __future__ import annotations

import difflib
import json
from typing import Dict, List, Sequence, Tuple

from repro.trace.explain import collect_events
from repro.trace.tracer import Span

#: Event name this ledger records.
CUT_DECISION = "cut.decision"


def cut_ledger(roots: Sequence[Span]) -> List[Tuple[str, Dict[str, object]]]:
    """All ``cut.decision`` events of a span forest, depth-first, as
    ``(span_path, attrs)`` pairs.

    Depth-first order is the emission order (the recursion visits
    areas deterministically), so two runs over the same corpus produce
    comparable ledgers row for row.
    """
    return [
        (path, dict(event.attrs))
        for path, event in collect_events(roots, CUT_DECISION)
    ]


def ledger_lines(roots: Sequence[Span]) -> List[str]:
    """The ledger serialised canonically — one compact JSON object per
    decision, keys sorted, no timestamps.  Byte-comparable across runs:
    equality of these lines is the fast-vs-naive acceptance gate.
    """
    return [
        json.dumps({"span": path, **attrs}, sort_keys=True)
        for path, attrs in cut_ledger(roots)
    ]


def ledger_diff(
    expected: Sequence[str],
    actual: Sequence[str],
    expected_label: str = "expected",
    actual_label: str = "actual",
    context: int = 2,
) -> List[str]:
    """Unified diff between two canonical ledgers (:func:`ledger_lines`).

    Empty ⇔ the runs made byte-identical cut decisions.  Non-empty
    output is printable as-is and names the first diverging decision —
    the debugging entry point when an optimisation breaks equivalence.
    """
    return list(
        difflib.unified_diff(
            list(expected),
            list(actual),
            fromfile=expected_label,
            tofile=actual_label,
            n=context,
            lineterm="",
        )
    )
