"""Hierarchical spans, decision events, and the tracer handle.

The model is deliberately small:

* a :class:`Span` is a named interval with attributes, child spans and
  :class:`TraceEvent` records — the tree ``corpus > doc[i] > segment >
  segment.cuts`` mirrors the pipeline's call structure;
* a :class:`TraceEvent` is one *decision* the pipeline took (a cut
  accepted or rejected, a merge comparison, a Pareto front), attached
  to whichever span was open when it happened;
* a :class:`Tracer` owns a thread-safe buffer of finished root spans
  and a per-thread stack of open ones.

Timestamps come from ``time.perf_counter`` and are therefore only
meaningful *within* one process; the exporters
(:mod:`repro.trace.export`) can normalise them away, which is how the
determinism tests compare serial and multi-process runs byte for byte.

``NULL_TRACER`` is the no-op twin every traced code path defaults to:
its ``span()`` hands back a shared do-nothing context manager and
``event()`` returns immediately, so tracing-off overhead is one
attribute lookup and a method call.  Sites that would compute event
attributes eagerly should guard on :attr:`Tracer.enabled`::

    if tracer.enabled:
        tracer.event("cut.decision", accepted=True, width=w)
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

#: Bumped when the serialised span layout changes incompatibly.
SPAN_SCHEMA_VERSION = 1

#: The trace-event schema: every decision-event name the pipeline may
#: emit.  Downstream consumers (the explain report, trace diffing) key
#: on these strings, so the set is closed — ``repro check`` verifies
#: statically that every ``tracer.event("…")`` call site uses a
#: registered name (SCHEMA001) and that no registered name has lost
#: its emitter (SCHEMA002).  Register new events here first.
EVENT_NAMES = frozenset(
    {
        "cut.decision",
        "fault.injected",
        "merge.decision",
        "merge.pass",
        "ocr.cache",
        "pareto.front",
        "pipeline.degrade",
        "runner.degrade",
        "runner.quarantine",
        "runner.resume",
        "runner.retry",
        "runner.timeout",
        "runner.worker_replace",
        "select.decision",
        "serve.admit",
        "serve.deadline",
        "serve.drain",
        "serve.shed",
    }
)


class TraceEvent:
    """One decision event: a name, a timestamp, free-form attributes.

    Attribute values must be JSON-serialisable (numbers, strings,
    bools, lists/dicts of those) — the exporters write them verbatim.
    """

    __slots__ = ("name", "t", "attrs")

    def __init__(self, name: str, t: float, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.t = t
        self.attrs = attrs if attrs is not None else {}

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "t": self.t, "attrs": self.attrs}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "TraceEvent":
        return TraceEvent(
            str(data["name"]), float(data.get("t", 0.0)), dict(data.get("attrs", {}))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.name!r}, attrs={self.attrs!r})"


class Span:
    """A named interval in the trace tree.

    ``t0``/``t1`` are ``perf_counter`` readings (process-relative
    seconds); ``t1 == 0.0`` means the span never closed (a crash, or a
    buffer drained mid-flight).  ``attrs`` set at creation identify the
    span (``doc`` spans carry ``index`` and ``doc_id``).
    """

    __slots__ = ("name", "attrs", "t0", "t1", "events", "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None, t0: float = 0.0):
        self.name = name
        self.attrs = attrs if attrs is not None else {}
        self.t0 = t0
        self.t1 = 0.0
        self.events: List[TraceEvent] = []
        self.children: List["Span"] = []

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        return max(self.t1 - self.t0, 0.0) if self.t1 else 0.0

    def label(self) -> str:
        """Path segment for this span: ``doc`` spans render as
        ``doc[3]`` so paths distinguish documents."""
        index = self.attrs.get("index")
        return f"{self.name}[{index}]" if index is not None else self.name

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every descendant span (including self) with ``name``."""
        return [s for s in self.walk() if s.name == name]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (recursive) — the cross-process wire format."""
        return {
            "name": self.name,
            "attrs": self.attrs,
            "t0": self.t0,
            "t1": self.t1,
            "events": [e.to_dict() for e in self.events],
            "children": [c.to_dict() for c in self.children],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Span":
        span = Span(str(data["name"]), dict(data.get("attrs", {})))
        span.t0 = float(data.get("t0", 0.0))
        span.t1 = float(data.get("t1", 0.0))
        span.events = [TraceEvent.from_dict(e) for e in data.get("events", [])]
        span.children = [Span.from_dict(c) for c in data.get("children", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.label()!r}, events={len(self.events)}, "
            f"children={len(self.children)})"
        )


class _SpanContext:
    """The ``with`` handle one ``tracer.span(...)`` call returns."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.t1 = self._tracer._clock()
        if exc is not None:
            # Deepest failing span wins: record the full path once and
            # let outer frames of the same exception leave it alone.
            self._tracer._note_error(exc)
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Produces hierarchical spans and decision events.

    Thread-safe: each thread keeps its own open-span stack (so spans
    nest per call stack), while the finished-roots buffer is guarded by
    a lock.  The parallel runner serialises drained buffers from worker
    processes and re-parents them here via :meth:`adopt`.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._local = threading.local()
        self._roots: List[Span] = []
        self._orphans: List[TraceEvent] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a child span of whatever span is current on this
        thread (a new root when none is)."""
        return _SpanContext(self, Span(name, attrs, t0=self._clock()))

    def event(self, name: str, **attrs: Any) -> None:
        """Record a decision event on the current span.

        Events fired outside any span are kept as orphans and exported
        under a synthetic ``detached`` root rather than dropped.
        """
        ev = TraceEvent(name, self._clock(), attrs)
        stack = self._stack()
        if stack:
            stack[-1].events.append(ev)
        else:
            with self._lock:
                self._orphans.append(ev)

    def adopt(self, span: Span) -> None:
        """Attach an externally produced span (a worker's drained doc
        span) under the current span — or as a root if none is open."""
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def current_path(self) -> str:
        """``corpus/doc[3]/segment``-style path of the open span stack."""
        return "/".join(s.label() for s in self._stack())

    def consume_error_path(self, exc: BaseException) -> Optional[str]:
        """The span path at the *deepest* frame where ``exc`` unwound —
        set once per exception, cleared by this call."""
        noted = getattr(self._local, "error", None)
        self._local.error = None
        if noted is not None and noted[0] is exc:
            return noted[1]
        return None

    def drain(self) -> List[Span]:
        """Snapshot and reset the finished-roots buffer.

        Open spans stay on their thread stacks; orphan events are
        wrapped in a synthetic ``detached`` root so nothing is lost.
        """
        with self._lock:
            roots, self._roots = self._roots, []
            orphans, self._orphans = self._orphans, []
        if orphans:
            detached = Span("detached")
            detached.events = orphans
            roots.append(detached)
        return roots

    # ------------------------------------------------------------------
    # Stack plumbing
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(span)

    def _note_error(self, exc: BaseException) -> None:
        noted = getattr(self._local, "error", None)
        if noted is None or noted[0] is not exc:
            self._local.error = (exc, self.current_path())


class _NullSpanContext:
    """Shared do-nothing ``with`` handle (returns a throwaway span so
    callers may set attributes without branching)."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = Span("null")
_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """The tracing-off handle: every operation is a no-op.

    Hot paths hold one of these by default, so the cost of *not*
    tracing is a method call — no buffers, no clock reads, no
    allocation beyond the ignored kwargs dict.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_CONTEXT

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def adopt(self, span: Span) -> None:
        return None

    def current_path(self) -> str:
        return ""

    def consume_error_path(self, exc: BaseException) -> Optional[str]:
        return None

    def drain(self) -> List[Span]:
        return []


#: The shared tracing-off handle (stateless, safe to share everywhere).
NULL_TRACER = NullTracer()
