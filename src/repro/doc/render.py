"""Rasterisation of documents.

Two renderers:

* :func:`rasterize` — an RGB pixel array.  Words are drawn as simple
  glyph-stroke patterns in their colour; images as textured blocks.
  This is what colour features sample and what figure benches save.
* :func:`ascii_render` — a coarse character grid used by the figure
  benches (Fig. 4 / Fig. 6) to show layout trees and logical blocks in
  a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.colors import LabColor, lab_to_rgb
from repro.doc.document import Document
from repro.doc.elements import ImageElement, TextElement
from repro.geometry import BBox


def rasterize(doc: Document, scale: float = 1.0) -> np.ndarray:
    """Render ``doc`` to an ``(H, W, 3)`` uint8 RGB array.

    Glyphs are approximated by vertical strokes at character pitch —
    enough texture that average-colour sampling over a word box recovers
    a blend of glyph and background colour, as real pixels would.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    height = max(1, int(round(doc.height * scale)))
    width = max(1, int(round(doc.width * scale)))
    canvas = np.empty((height, width, 3), dtype=np.uint8)
    canvas[:, :] = lab_to_rgb(doc.background)

    for element in doc.elements:
        box = element.bbox.scale(scale)
        x1, y1 = int(box.x), int(box.y)
        x2, y2 = int(np.ceil(box.x2)), int(np.ceil(box.y2))
        x1, y1 = max(x1, 0), max(y1, 0)
        x2, y2 = min(x2, width), min(y2, height)
        if x2 <= x1 or y2 <= y1:
            continue
        rgb = np.array(lab_to_rgb(element.color), dtype=np.uint8)
        if isinstance(element, ImageElement):
            _draw_textured_block(canvas, x1, y1, x2, y2, rgb)
        elif isinstance(element, TextElement):
            _draw_word(canvas, x1, y1, x2, y2, rgb, element)
    return canvas


def _draw_textured_block(
    canvas: np.ndarray, x1: int, y1: int, x2: int, y2: int, rgb: np.ndarray
) -> None:
    """Fill a block with a light checker texture around the base colour."""
    block = canvas[y1:y2, x1:x2]
    block[:, :] = rgb
    yy, xx = np.mgrid[y1:y2, x1:x2]
    checker = ((yy // 4 + xx // 4) % 2).astype(bool)
    lighter = np.clip(rgb.astype(int) + 25, 0, 255).astype(np.uint8)
    block[checker] = lighter


def _draw_word(
    canvas: np.ndarray,
    x1: int,
    y1: int,
    x2: int,
    y2: int,
    rgb: np.ndarray,
    element: TextElement,
) -> None:
    """Draw pseudo-glyph strokes for a word.

    One vertical stroke per character at the word's character pitch; a
    horizontal mid-bar for bold text thickens the coverage.
    """
    n_chars = max(len(element.text), 1)
    span = x2 - x1
    pitch = max(span / n_chars, 1.0)
    stroke_w = 2 if element.bold else 1
    for i in range(n_chars):
        sx = int(x1 + i * pitch)
        canvas[y1:y2, sx : min(sx + stroke_w, x2)] = rgb
    mid = (y1 + y2) // 2
    canvas[mid : min(mid + 1, y2), x1:x2] = rgb


def save_ppm(canvas: np.ndarray, path: str) -> None:
    """Write an RGB array as a binary PPM (P6) image.

    PPM needs no imaging dependency, and every common viewer and
    converter reads it — the pixel-artifact escape hatch for figures.
    """
    if canvas.ndim != 3 or canvas.shape[2] != 3 or canvas.dtype != np.uint8:
        raise ValueError("save_ppm expects an (H, W, 3) uint8 array")
    height, width = canvas.shape[:2]
    with open(path, "wb") as f:
        f.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        f.write(canvas.tobytes())


def average_color_in(canvas: np.ndarray, box: BBox) -> Tuple[float, float, float]:
    """Mean RGB inside ``box`` on a rendered canvas (clipped to it)."""
    h, w = canvas.shape[:2]
    x1, y1 = max(int(box.x), 0), max(int(box.y), 0)
    x2, y2 = min(int(np.ceil(box.x2)), w), min(int(np.ceil(box.y2)), h)
    if x2 <= x1 or y2 <= y1:
        return (255.0, 255.0, 255.0)
    region = canvas[y1:y2, x1:x2].reshape(-1, 3)
    mean = region.mean(axis=0)
    return (float(mean[0]), float(mean[1]), float(mean[2]))


def ascii_render(
    doc: Document,
    boxes: Optional[Sequence[BBox]] = None,
    cols: int = 96,
    rows: int = 48,
    labels: Optional[Sequence[str]] = None,
) -> str:
    """Coarse ASCII view of a page: words as ``#``, images as ``@``,
    overlay ``boxes`` as bordered rectangles (optionally labelled).

    Used by the Fig. 4 / Fig. 6 benches to display the layout model and
    the logical blocks / interest points without an image viewer.
    """
    grid = [[" "] * cols for _ in range(rows)]
    sx = cols / doc.width
    sy = rows / doc.height

    def to_cell(x: float, y: float) -> Tuple[int, int]:
        return (
            min(max(int(x * sx), 0), cols - 1),
            min(max(int(y * sy), 0), rows - 1),
        )

    for element in doc.elements:
        glyph = "#" if isinstance(element, TextElement) else "@"
        c1, r1 = to_cell(element.bbox.x, element.bbox.y)
        c2, r2 = to_cell(element.bbox.x2, element.bbox.y2)
        for r in range(r1, r2 + 1):
            for c in range(c1, c2 + 1):
                grid[r][c] = glyph

    for i, box in enumerate(boxes or []):
        c1, r1 = to_cell(box.x, box.y)
        c2, r2 = to_cell(box.x2, box.y2)
        for c in range(c1, c2 + 1):
            grid[r1][c] = "-" if grid[r1][c] == " " else grid[r1][c]
            grid[r2][c] = "-" if grid[r2][c] == " " else grid[r2][c]
        for r in range(r1, r2 + 1):
            grid[r][c1] = "|" if grid[r][c1] == " " else grid[r][c1]
            grid[r][c2] = "|" if grid[r][c2] == " " else grid[r][c2]
        for corner_c, corner_r in ((c1, r1), (c2, r1), (c1, r2), (c2, r2)):
            grid[corner_r][corner_c] = "+"
        if labels and i < len(labels):
            label = labels[i][: max(c2 - c1 - 1, 0)]
            for j, ch in enumerate(label):
                grid[r1][c1 + 1 + j] = ch

    return "\n".join("".join(row) for row in grid)


def render_layout_overlay(doc: Document, boxes: Iterable[BBox]) -> List[str]:
    """Text description of boxes over the page, one line per box."""
    lines = []
    for i, box in enumerate(boxes):
        lines.append(
            f"block[{i}] x={box.x:7.1f} y={box.y:7.1f} "
            f"w={box.w:7.1f} h={box.h:7.1f}"
        )
    return lines
