"""Atomic elements of the visual content (paper §4.1).

The paper's smallest unit of visual content is the *atomic element*,
either textual or image.  A textual element is a **word** represented as
``(text-data, color, width, height)``; an image element is
``(image-data, width, height)``.  We extend both with the position of
their bounding box (the paper carries positions in the layout tree
nodes; keeping them on the element simplifies reverse lookups) and with
the style attributes the synthetic renderer needs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.colors import LabColor, rgb_to_lab
from repro.geometry import BBox

_element_counter = itertools.count()

_BLACK = rgb_to_lab((20, 20, 20))


def _next_element_id() -> int:
    return next(_element_counter)


@dataclass(frozen=True)
class TextElement:
    """A word on the page.

    Attributes
    ----------
    text:
        The word's text data.
    bbox:
        Smallest bounding box enclosing the word.
    color:
        Average colour of the glyphs in LAB space (§4.1.1).
    font_size:
        Nominal glyph height in layout units; the paper's font-size
        uniformity assumption within a logical block (§5.1.2) and the
        interest-point height objective (§5.3.1) both key on this.
    bold, italic:
        Typographical emphasis flags, consumed by the renderer and by
        baselines that use style features (Apostolova et al.).
    font_family:
        Face name; a free-form tag on synthetic documents.
    """

    text: str
    bbox: BBox
    color: LabColor = _BLACK
    font_size: float = 12.0
    bold: bool = False
    italic: bool = False
    font_family: str = "serif"
    element_id: int = field(default_factory=_next_element_id)

    def __post_init__(self) -> None:
        if not self.text:
            raise ValueError("a textual element holds at least one character")
        if self.font_size <= 0:
            raise ValueError("font_size must be positive")

    @property
    def is_textual(self) -> bool:
        return True

    @property
    def width(self) -> float:
        return self.bbox.w

    @property
    def height(self) -> float:
        return self.bbox.h

    def with_text(self, text: str) -> "TextElement":
        """A copy carrying different text (used by the OCR noise model)."""
        return replace(self, text=text)

    def with_bbox(self, bbox: BBox) -> "TextElement":
        return replace(self, bbox=bbox)


@dataclass(frozen=True)
class ImageElement:
    """An image region on the page.

    ``image_data`` is an opaque tag on synthetic documents (e.g.
    ``"logo"``, ``"photo"``); the rasteriser turns it into a textured
    block.  Its average colour participates in visual features exactly
    like text colour does.
    """

    image_data: str
    bbox: BBox
    color: LabColor = _BLACK
    element_id: int = field(default_factory=_next_element_id)

    def __post_init__(self) -> None:
        if self.bbox.area <= 0:
            raise ValueError("an image element covers a positive area")

    @property
    def is_textual(self) -> bool:
        return False

    @property
    def width(self) -> float:
        return self.bbox.w

    @property
    def height(self) -> float:
        return self.bbox.h


AtomicElement = Union[TextElement, ImageElement]
