"""Document (de)serialisation to JSON.

Lets corpora, transcriptions and annotations round-trip through disk —
what a downstream adopter needs to run the pipeline on their own data:
produce this JSON from any OCR engine and feed it to
:class:`repro.core.VS2Pipeline` without touching the synthetic
generators.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, TextIO

from repro.colors import LabColor
from repro.doc.annotations import Annotation
from repro.doc.document import Document
from repro.doc.elements import ImageElement, TextElement
from repro.geometry import BBox


def _bbox_to_list(box: BBox) -> List[float]:
    return [box.x, box.y, box.w, box.h]


def _bbox_from_list(values: List[float]) -> BBox:
    return BBox.from_tuple(values)


def element_to_dict(element) -> Dict[str, Any]:
    """JSON-ready dict for one atomic element."""
    if isinstance(element, TextElement):
        return {
            "kind": "text",
            "text": element.text,
            "bbox": _bbox_to_list(element.bbox),
            "color": [element.color.l, element.color.a, element.color.b],
            "font_size": element.font_size,
            "bold": element.bold,
            "italic": element.italic,
            "font_family": element.font_family,
        }
    if isinstance(element, ImageElement):
        return {
            "kind": "image",
            "image_data": element.image_data,
            "bbox": _bbox_to_list(element.bbox),
            "color": [element.color.l, element.color.a, element.color.b],
        }
    raise TypeError(f"unknown element type {type(element)!r}")


def element_from_dict(data: Dict[str, Any]):
    """Inverse of :func:`element_to_dict`."""
    color = LabColor(*data["color"])
    if data["kind"] == "text":
        return TextElement(
            text=data["text"],
            bbox=_bbox_from_list(data["bbox"]),
            color=color,
            font_size=data["font_size"],
            bold=data["bold"],
            italic=data["italic"],
            font_family=data["font_family"],
        )
    if data["kind"] == "image":
        return ImageElement(data["image_data"], _bbox_from_list(data["bbox"]), color)
    raise ValueError(f"unknown element kind {data['kind']!r}")


def document_to_dict(doc: Document) -> Dict[str, Any]:
    """JSON-ready dict for ``doc`` (the DOM, if any, is not included —
    serialise HTML separately with :meth:`HtmlNode.to_html`)."""
    return {
        "doc_id": doc.doc_id,
        "width": doc.width,
        "height": doc.height,
        "source": doc.source,
        "dataset": doc.dataset,
        "background": [doc.background.l, doc.background.a, doc.background.b],
        "metadata": doc.metadata,
        "elements": [element_to_dict(e) for e in doc.elements],
        "annotations": [
            {
                "entity_type": a.entity_type,
                "text": a.text,
                "bbox": _bbox_to_list(a.bbox),
                "field_descriptor": a.field_descriptor,
            }
            for a in doc.annotations
        ],
    }


def document_from_dict(data: Dict[str, Any]) -> Document:
    """Inverse of :func:`document_to_dict`."""
    return Document(
        doc_id=data["doc_id"],
        width=data["width"],
        height=data["height"],
        elements=[element_from_dict(e) for e in data["elements"]],
        annotations=[
            Annotation(
                a["entity_type"],
                a["text"],
                _bbox_from_list(a["bbox"]),
                a.get("field_descriptor"),
            )
            for a in data["annotations"]
        ],
        source=data["source"],
        dataset=data.get("dataset", ""),
        background=LabColor(*data["background"]),
        metadata=data.get("metadata", {}),
    )


def save_documents(docs, stream: TextIO) -> int:
    """Write documents as JSON lines; returns the count."""
    count = 0
    for doc in docs:
        stream.write(json.dumps(document_to_dict(doc), ensure_ascii=False) + "\n")
        count += 1
    return count


def load_documents(stream: TextIO) -> List[Document]:
    """Read documents from a JSON-lines stream."""
    docs = []
    for line in stream:
        line = line.strip()
        if line:
            docs.append(document_from_dict(json.loads(line)))
    return docs
