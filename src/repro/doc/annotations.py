"""Ground-truth annotations (paper §6.2).

The paper's experts annotated every document with (a) the smallest
bounding box containing each named entity and (b) the mapping from that
box to the entity it contains.  Synthetic generators emit the same
records directly, so evaluation code is identical whether ground truth
came from annotators or from the generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geometry import BBox


@dataclass(frozen=True)
class Annotation:
    """One annotated named entity occurrence.

    Attributes
    ----------
    entity_type:
        Key from the task's semantic vocabulary (e.g. ``"event_title"``,
        ``"broker_phone"``, or a D1 field identifier).
    text:
        Ground-truth text of the entity.
    bbox:
        Smallest bounding box containing the entity on the page.
    field_descriptor:
        For form-like documents (D1), the printed field label whose
        value this annotation marks; ``None`` elsewhere.
    """

    entity_type: str
    text: str
    bbox: BBox
    field_descriptor: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.entity_type:
            raise ValueError("entity_type must be non-empty")

    def matches_box(self, proposal: BBox, threshold: float = 0.65) -> bool:
        """PASCAL-VOC style match test (IoU > threshold, §6.2)."""
        return self.bbox.iou(proposal) > threshold
