"""The page-level document object.

A :class:`Document` is the unit every stage of the pipeline consumes:
synthetic generators produce it, the OCR simulator transcribes it,
VS2-Segment partitions it and the evaluation harness scores predictions
against its ground-truth annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.colors import LabColor, rgb_to_lab
from repro.doc.annotations import Annotation
from repro.doc.elements import AtomicElement, ImageElement, TextElement
from repro.geometry import BBox

_WHITE = rgb_to_lab((250, 250, 250))

#: Source/format tags.  D2 mixes "mobile" captures with digital "pdf"
#: flyers (§6.1); D1 documents are scans; D3 documents are HTML.
SOURCE_KINDS = ("scan", "mobile", "pdf", "html")


@dataclass
class Document:
    """A single-page visually rich document.

    Attributes
    ----------
    doc_id:
        Stable identifier, unique within a corpus.
    width, height:
        Page extent in layout units (the synthetic corpora use a letter
        page at roughly 100 dpi: 850 × 1100).
    elements:
        The atomic elements (words and images) on the page.
    annotations:
        Ground-truth named entities; never consulted by extractors.
    source:
        One of :data:`SOURCE_KINDS`; drives the OCR noise model and
        baseline applicability (VIPS needs ``html``).
    dataset:
        ``"D1"``, ``"D2"`` or ``"D3"`` for corpus-level bookkeeping.
    html:
        The DOM root when the document has an HTML source, else ``None``.
        Typed as ``Any`` to avoid a circular import with ``repro.html``.
    background:
        Average page background colour.
    metadata:
        Free-form generator annotations (noise level, template id, ...).
    """

    doc_id: str
    width: float
    height: float
    elements: List[AtomicElement] = field(default_factory=list)
    annotations: List[Annotation] = field(default_factory=list)
    source: str = "pdf"
    dataset: str = ""
    html: Optional[Any] = None
    background: LabColor = _WHITE
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("page extent must be positive")
        if self.source not in SOURCE_KINDS:
            raise ValueError(f"unknown source kind {self.source!r}")

    # ------------------------------------------------------------------
    # Element access
    # ------------------------------------------------------------------
    @property
    def page_bbox(self) -> BBox:
        return BBox(0.0, 0.0, self.width, self.height)

    @property
    def text_elements(self) -> List[TextElement]:
        return [e for e in self.elements if isinstance(e, TextElement)]

    @property
    def image_elements(self) -> List[ImageElement]:
        return [e for e in self.elements if isinstance(e, ImageElement)]

    def elements_in(self, frame: BBox, min_overlap: float = 0.5) -> List[AtomicElement]:
        """Atomic elements whose boxes lie (mostly) inside ``frame``.

        The paper performs this *reverse lookup* to recover the atoms of
        a visual area (§4.2).  An element belongs to the frame when at
        least ``min_overlap`` of its own area is covered, which keeps
        elements straddling a separator from being double-counted.
        """
        found: List[AtomicElement] = []
        for element in self.elements:
            inter = element.bbox.intersection(frame)
            if inter is None or element.bbox.area <= 0:
                continue
            if inter.area / element.bbox.area >= min_overlap:
                found.append(element)
        return found

    def words_in(self, frame: BBox, min_overlap: float = 0.5) -> List[TextElement]:
        return [
            e for e in self.elements_in(frame, min_overlap) if isinstance(e, TextElement)
        ]

    def iter_words(self) -> Iterator[TextElement]:
        return iter(self.text_elements)

    # ------------------------------------------------------------------
    # Text access
    # ------------------------------------------------------------------
    def text_of(self, frame: BBox, min_overlap: float = 0.5) -> str:
        """Reading-order text of the words inside ``frame``.

        Words are linearised into lines (top-to-bottom) and left-to-right
        within a line — the natural reading order *within* a coherent
        area.  This is what VS2-Select transcribes per logical block.
        """
        words = self.words_in(frame, min_overlap)
        return join_in_reading_order(words)

    def full_text(self) -> str:
        """Naive whole-page reading order — the text-only view."""
        return join_in_reading_order(self.text_elements)

    # ------------------------------------------------------------------
    # Ground truth access (evaluation only)
    # ------------------------------------------------------------------
    def annotations_of(self, entity_type: str) -> List[Annotation]:
        return [a for a in self.annotations if a.entity_type == entity_type]

    def entity_types(self) -> List[str]:
        seen: Dict[str, None] = {}
        for a in self.annotations:
            seen.setdefault(a.entity_type, None)
        return list(seen)

    def validate(self) -> None:
        """Check internal consistency; raises ``ValueError`` on problems.

        Generators call this before emitting a document: every element
        and annotation must lie on the page (after clipping slack for
        rotated mobile captures) and annotations must be non-empty.
        """
        frame = self.page_bbox.expand(max(self.width, self.height) * 0.25)
        for element in self.elements:
            if not frame.intersects(element.bbox):
                raise ValueError(f"element {element!r} lies off the page")
        for annotation in self.annotations:
            if not frame.intersects(annotation.bbox):
                raise ValueError(f"annotation {annotation!r} lies off the page")
            if not annotation.text:
                raise ValueError(f"annotation {annotation.entity_type} has empty text")


def group_into_lines(
    words: Sequence[TextElement], tolerance_ratio: float = 0.6
) -> List[List[TextElement]]:
    """Group words into text lines by vertical centroid proximity.

    Two words share a line when their vertical centroids differ by less
    than ``tolerance_ratio`` of the smaller word height.  Returns lines
    top-to-bottom, each sorted left-to-right.
    """
    if not words:
        return []
    ordered = sorted(words, key=lambda w: (w.bbox.centroid[1], w.bbox.x))
    lines: List[List[TextElement]] = [[ordered[0]]]
    for word in ordered[1:]:
        anchor = lines[-1][0]
        tolerance = tolerance_ratio * min(anchor.bbox.h, word.bbox.h)
        if abs(word.bbox.centroid[1] - anchor.bbox.centroid[1]) <= max(tolerance, 1.0):
            lines[-1].append(word)
        else:
            lines.append([word])
    for line in lines:
        line.sort(key=lambda w: w.bbox.x)
    return lines


def join_in_reading_order(words: Sequence[TextElement]) -> str:
    """Linearise words line-by-line into a single string."""
    lines = group_into_lines(words)
    return "\n".join(" ".join(w.text for w in line) for line in lines)
