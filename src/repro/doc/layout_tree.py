"""The hierarchical layout model (paper §4.2).

The visual organisation of a document is a tree ``T_D = (V, E)``: an
edge from a parent to a child means the child's visual area is enclosed
by the parent's.  Non-leaf nodes are nested, semantically diverse areas;
after VS2-Segment converges the **leaves are the logical blocks**.

Each node is the paper's nested tuple ``(B, x, y, width, height)`` —
the atoms it encloses plus its bounding box.  We keep the box as a
:class:`~repro.geometry.BBox` and the atoms as element references.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence

from repro.doc.elements import AtomicElement, TextElement
from repro.geometry import BBox, enclosing_bbox

_node_counter = itertools.count()


@dataclass(eq=False)
class LayoutNode:
    """A visual area in the layout tree.  Identity semantics (two nodes
    with identical content are still distinct areas).

    Attributes
    ----------
    bbox:
        Smallest bounding box enclosing the area.
    atoms:
        Atomic elements appearing within the area (the paper's ``B``
        set, recovered by reverse lookup).
    children:
        Sub-areas; empty for leaves (logical-block candidates).
    kind:
        How this node was produced — ``"root"``, ``"cut"`` (explicit
        delimiter split), ``"cluster"`` (implicit-modifier clustering),
        or ``"merged"`` (semantic merging).  Diagnostic only.
    """

    bbox: BBox
    atoms: List[AtomicElement] = field(default_factory=list)
    children: List["LayoutNode"] = field(default_factory=list)
    kind: str = "root"
    node_id: int = field(default_factory=lambda: next(_node_counter))
    parent: Optional["LayoutNode"] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add_child(self, child: "LayoutNode") -> "LayoutNode":
        child.parent = self
        self.children.append(child)
        return child

    def replace_children(self, children: Sequence["LayoutNode"]) -> None:
        self.children = []
        for child in children:
            self.add_child(child)

    def siblings(self) -> List["LayoutNode"]:
        if self.parent is None:
            return []
        return [c for c in self.parent.children if c is not self]

    def depth(self) -> int:
        """Distance from the root (root has depth 0)."""
        node, d = self, 0
        while node.parent is not None:
            node = node.parent
            d += 1
        return d

    def walk(self) -> Iterator["LayoutNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> List["LayoutNode"]:
        return [n for n in self.walk() if n.is_leaf]

    # ------------------------------------------------------------------
    # Content
    # ------------------------------------------------------------------
    @property
    def text_atoms(self) -> List[TextElement]:
        return [a for a in self.atoms if isinstance(a, TextElement)]

    def text(self) -> str:
        """Reading-order transcription of the node's words."""
        from repro.doc.document import join_in_reading_order

        return join_in_reading_order(self.text_atoms)

    def word_count(self) -> int:
        return len(self.text_atoms)

    def word_density(self) -> float:
        """Words per unit area — the third interest-point objective
        (§5.3.1) seeks to *minimise* this."""
        if self.bbox.area <= 0:
            return 0.0
        return self.word_count() / self.bbox.area

    def mean_font_size(self) -> float:
        sizes = [a.font_size for a in self.text_atoms]
        if not sizes:
            return 0.0
        return sum(sizes) / len(sizes)

    def refit_bbox(self) -> None:
        """Shrink the node's box to the smallest enclosure of its atoms."""
        if self.atoms:
            self.bbox = enclosing_bbox([a.bbox for a in self.atoms])


@dataclass
class LayoutTree:
    """The document layout tree ``T_D``.

    Convergent VS2-Segment output: the leaves of :attr:`root` are the
    logical blocks of the document.
    """

    root: LayoutNode

    @property
    def height(self) -> int:
        """Length of the longest root-to-leaf path (edges).

        The semantic-merge threshold schedule ``θ_h`` (§5.1.2 footnote)
        is a function of this height.
        """

        def node_height(node: LayoutNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(node_height(c) for c in node.children)

        return node_height(self.root)

    def walk(self) -> Iterator[LayoutNode]:
        return self.root.walk()

    def leaves(self) -> List[LayoutNode]:
        return self.root.leaves()

    def logical_blocks(self) -> List[LayoutNode]:
        """The paper's logical blocks: non-empty leaves of the tree."""
        return [leaf for leaf in self.leaves() if leaf.atoms]

    def nodes_at_level(self, level: int) -> List[LayoutNode]:
        """All nodes at a given depth; Eq. 1 compares same-level nodes."""
        return [n for n in self.walk() if n.depth() == level]

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    def find(self, predicate: Callable[[LayoutNode], bool]) -> Optional[LayoutNode]:
        for node in self.walk():
            if predicate(node):
                return node
        return None

    def collapse_unary(self) -> int:
        """Hoist single-child nodes: a node whose area split into one
        piece (e.g. after its other children merged away) is the same
        visual area as that piece.  Returns the number of hoists."""
        count = 0
        changed = True
        while changed:
            changed = False
            for node in self.walk():
                if len(node.children) == 1:
                    child = node.children[0]
                    node.atoms = child.atoms
                    node.kind = child.kind
                    node.bbox = child.bbox
                    node.replace_children(child.children)
                    count += 1
                    changed = True
                    break
        return count

    def validate_nesting(self) -> None:
        """Every child's area must be enclosed by its parent's (with a
        small tolerance for boxes refit after merging)."""
        for node in self.walk():
            frame = node.bbox.expand(1.0)
            for child in node.children:
                if not frame.contains_bbox(child.bbox):
                    raise ValueError(
                        f"child {child.node_id} escapes parent {node.node_id}: "
                        f"{child.bbox} outside {node.bbox}"
                    )
