"""The document model of the paper (§4).

A visually rich document is modelled as ``D = (C, T)`` where ``C`` is
the set of *visual contents* and ``T`` their *visual organisation*:

* atomic elements — :class:`TextElement` (a word, carrying its text,
  colour and bounding box) and :class:`ImageElement` (a bitmap region);
* :class:`Document` — a page holding the atomic elements together with
  ground-truth :class:`Annotation` records used only by evaluation;
* :class:`LayoutTree` / :class:`LayoutNode` — the nested organisation
  whose leaves are the *logical blocks*;
* :mod:`repro.doc.render` — rasterisation of a document to an RGB pixel
  array (for colour features and figure reproduction) and to ASCII art.
"""

from repro.doc.elements import AtomicElement, ImageElement, TextElement
from repro.doc.annotations import Annotation
from repro.doc.document import Document
from repro.doc.layout_tree import LayoutNode, LayoutTree
from repro.doc.render import ascii_render, rasterize
from repro.doc.serialize import (
    document_from_dict,
    document_to_dict,
    load_documents,
    save_documents,
)

__all__ = [
    "AtomicElement",
    "TextElement",
    "ImageElement",
    "Annotation",
    "Document",
    "LayoutNode",
    "LayoutTree",
    "rasterize",
    "ascii_render",
    "document_to_dict",
    "document_from_dict",
    "save_documents",
    "load_documents",
]
