"""Synthetic fixed-format listing websites (Table 2).

The paper populates its holdout corpus by querying public websites —
irs.gov (D1), allevents.in and dl.acm.org (D2), fsbo.com and
homesbyowner.com (D3) — and running a custom web wrapper over the
fixed-format result pages.  These builders emit the same *kind* of
pages: every record rendered with an identical tag/class skeleton, so
the wrapper of :mod:`repro.html.wrapper` can extract (entity, text)
tuples exactly as the paper's pipeline does.

Each site function returns serialised HTML (a string): the holdout
builder parses it back, exercising the full scrape→parse→wrap path.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.html import WrapperRule, el
from repro.synth.providers import FakeProvider
from repro.synth.tax_forms import form_faces


def irs_field_tables(seed: int = 0) -> str:
    """irs.gov-style page: 20 tables of (field identifier, descriptor).

    §5.2.1: "Holdout corpus for the first IE task contained 20 tables,
    each with two columns, an identifier of the named entity to be
    extracted and its corresponding field descriptor."
    """
    body = el("body")
    for face in form_faces():
        table = el("table", class_="field-table")
        caption = el("caption", face.title)
        table.append(caption)
        header = el("tr", el("th", "Field"), el("th", "Descriptor"))
        table.append(header)
        for field in face.fields:
            row = el(
                "tr",
                el("td", field.entity_type, class_="field-id"),
                el("td", field.descriptor, class_="field-descriptor"),
                class_="field-row",
            )
            table.append(row)
        body.append(table)
    page = el("html", el("head", el("title", "IRS 1988 1040 Package Field Index")), body)
    return page.to_html()


IRS_WRAPPER = WrapperRule(
    record_selector=("tr", "field-row"),
    field_selectors={
        "field_id": ("td", "field-id"),
        "descriptor": ("td", "field-descriptor"),
    },
)


def allevents_listing(seed: int, n_results: int = 250) -> str:
    """allevents.in-style results page (query: NY, filter: 04/01-05/31)."""
    rng = np.random.default_rng((seed, 0xAE))
    fake = FakeProvider(rng)
    body = el("body", el("h1", "Events in New York - April and May"))
    for _ in range(n_results):
        card = el("div", class_="event-card")
        card.append(el("h2", fake.event_title(), class_="event-title"))
        card.append(el("span", fake.event_time(), class_="event-time"))
        card.append(el("span", f"{fake.venue()}, {fake.full_address()}", class_="event-place"))
        card.append(el("span", fake.organizer(), class_="event-organizer"))
        card.append(el("p", fake.event_description(2), class_="event-description"))
        body.append(card)
    return el("html", body).to_html()


ALLEVENTS_WRAPPER = WrapperRule(
    record_selector=("div", "event-card"),
    field_selectors={
        "event_title": ("h2", "event-title"),
        "event_time": ("span", "event-time"),
        "event_place": ("span", "event-place"),
        "event_organizer": ("span", "event-organizer"),
        "event_description": ("p", "event-description"),
    },
)


def acm_talk_listing(seed: int, n_results: int = 250) -> str:
    """dl.acm.org-style talk index (query: Talks, sorted by views)."""
    rng = np.random.default_rng((seed, 0xACB))
    fake = FakeProvider(rng)
    body = el("body", el("h1", "Talks - sorted by views"))
    for i in range(n_results):
        item = el("li", class_="talk-item")
        title = f"{fake.event_title()}: a {fake.choice(['keynote', 'tutorial', 'lecture', 'seminar'])}"
        item.append(el("a", title, class_="talk-title"))
        speaker = fake.person_name()
        item.append(el("span", f"presented by {speaker}", class_="talk-speaker"))
        item.append(el("span", fake.event_time(), class_="talk-time"))
        item.append(el("span", f"{fake.venue()}, {fake.city()}", class_="talk-venue"))
        item.append(el("p", fake.event_description(1), class_="talk-abstract"))
        body.append(item)
    return el("html", body).to_html()


ACM_WRAPPER = WrapperRule(
    record_selector=("li", "talk-item"),
    field_selectors={
        "event_title": ("a", "talk-title"),
        "event_organizer": ("span", "talk-speaker"),
        "event_time": ("span", "talk-time"),
        "event_place": ("span", "talk-venue"),
        "event_description": ("p", "talk-abstract"),
    },
)


def fsbo_listing(seed: int, n_results: int = 100) -> str:
    """fsbo.com-style property listing page (query: NY)."""
    rng = np.random.default_rng((seed, 0xF5B0))
    fake = FakeProvider(rng)
    body = el("body", el("h1", "Properties for sale by owner - New York"))
    for _ in range(n_results):
        card = el("div", class_="listing")
        card.append(el("h2", fake.full_address(), class_="listing-address"))
        card.append(el("span", fake.property_size(), class_="listing-size"))
        card.append(el("span", fake.property_price(), class_="listing-price"))
        name = fake.person_name(with_prefix_p=0.05)
        card.append(el("span", name, class_="listing-broker"))
        card.append(el("span", fake.phone(), class_="listing-phone"))
        card.append(el("span", fake.email(name), class_="listing-email"))
        card.append(el("p", fake.property_description(2), class_="listing-description"))
        body.append(card)
    return el("html", body).to_html()


def homesbyowner_listing(seed: int, n_results: int = 100) -> str:
    """homesbyowner.com-style page — same fields, different skeleton."""
    rng = np.random.default_rng((seed, 0xB0E))
    fake = FakeProvider(rng)
    body = el("body", el("h1", "Homes by owner - New York"))
    for _ in range(n_results):
        row = el("tr", class_="home-row")
        row.append(el("td", fake.full_address(), class_="home-address"))
        row.append(el("td", fake.property_size(), class_="home-size"))
        name = fake.person_name(with_prefix_p=0.05)
        row.append(el("td", name, class_="home-owner"))
        row.append(el("td", fake.phone(), class_="home-phone"))
        row.append(el("td", fake.email(name), class_="home-email"))
        row.append(el("td", fake.property_description(1), class_="home-description"))
        body.append(row)
    table = el("table", class_="homes")
    table.children = body.children[1:]
    body.children = [body.children[0], table]
    return el("html", body).to_html()


FSBO_WRAPPER = WrapperRule(
    record_selector=("div", "listing"),
    field_selectors={
        "property_address": ("h2", "listing-address"),
        "property_size": ("span", "listing-size"),
        "broker_name": ("span", "listing-broker"),
        "broker_phone": ("span", "listing-phone"),
        "broker_email": ("span", "listing-email"),
        "property_description": ("p", "listing-description"),
    },
)

HOMESBYOWNER_WRAPPER = WrapperRule(
    record_selector=("tr", "home-row"),
    field_selectors={
        "property_address": ("td", "home-address"),
        "property_size": ("td", "home-size"),
        "broker_name": ("td", "home-owner"),
        "broker_phone": ("td", "home-phone"),
        "broker_email": ("td", "home-email"),
        "property_description": ("td", "home-description"),
    },
)

#: Table 2 of the paper, as code: dataset → (site builder, wrapper, query note).
HOLDOUT_SOURCES: Dict[str, List] = {
    "D1": [(irs_field_tables, IRS_WRAPPER, "irs.gov | 1988 | 1040")],
    "D2": [
        (allevents_listing, ALLEVENTS_WRAPPER, "allevents.in | NY | 04/01-05/31"),
        (acm_talk_listing, ACM_WRAPPER, "dl.acm.org | Talks | sorted by views"),
    ],
    "D3": [
        (fsbo_listing, FSBO_WRAPPER, "fsbo.com | NY | none"),
        (homesbyowner_listing, HOMESBYOWNER_WRAPPER, "homesbyowner.com | NY | none"),
    ],
}
