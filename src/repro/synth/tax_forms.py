"""Dataset D1: structured tax forms (NIST Special Database 6 stand-in).

The real D1 holds 5595 scanned forms over 20 form faces from the 1988
IRS 1040 package, with 1369 labelled fields in total.  This generator
builds 20 deterministic form *faces* — fixed templates of labelled
field rows — totalling ~1369 fields, and renders per-document instances
with randomly filled values and mild scan jitter.

The IE task matches the paper's: for every form field, extract the
value text; field descriptors are matched by exact string comparison
against the holdout corpus (§5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.colors import rgb_to_lab
from repro.doc import Annotation, Document, ImageElement, TextElement
from repro.geometry import BBox
from repro.synth.layout import TextStyle, layout_label_value, layout_line, word_width
from repro.synth.providers import FakeProvider

# The D1 schema -- entity prefix, descriptor phrases, form titles and
# the 20 deterministic faces -- lives in :mod:`repro.datasets` so the
# extraction side can use it without importing this generator.  The
# names are re-exported here for their historical import path.
from repro.datasets import (  # noqa: F401  (re-exports)
    D1_ENTITY_PREFIX,
    FormFace,
    FormField,
    all_field_descriptors,
    build_faces,
    form_faces,
)

PAGE_W, PAGE_H = 850.0, 1100.0

_N_FACES = 20

def _value_for(kind: str, fake: FakeProvider) -> str:
    if kind == "money":
        return fake.money_amount()
    if kind == "ssn":
        return fake.ssn()
    if kind == "name":
        return fake.person_name(with_prefix_p=0.0)
    if kind == "date":
        return fake.date_phrase()
    if kind == "check":
        return "X"
    raise ValueError(f"unknown value kind {kind!r}")


class TaxFormGenerator:
    """Seeded generator of D1 form documents."""

    def __init__(self, seed: int = 0, fill_rate: float = 0.95):
        if not 0 < fill_rate <= 1:
            raise ValueError("fill_rate must be in (0, 1]")
        self.seed = seed
        self.fill_rate = fill_rate

    def generate(self, doc_id: str, index: int) -> Document:
        rng = np.random.default_rng((self.seed, index, 0xD1))
        fake = FakeProvider(rng)
        face = form_faces()[int(rng.integers(_N_FACES))]

        label_style = TextStyle(10.5, rgb_to_lab((50, 50, 50)))
        value_style = TextStyle(11.0, rgb_to_lab((10, 10, 60)), bold=False, font_family="mono")
        title_style = TextStyle(17.0, rgb_to_lab((20, 20, 20)), bold=True)

        elements: list = []
        annotations: List[Annotation] = []

        block, tbox = layout_line(face.title, 60, 50, title_style)
        elements += block
        block, _ = layout_line("Department of the Treasury - Internal Revenue Service 1988", 60, 78, TextStyle(9.0, rgb_to_lab((90, 90, 90))))
        elements += block
        elements.append(
            ImageElement("rule", BBox(60, 100, PAGE_W - 120, 3), rgb_to_lab((60, 60, 60)))
        )

        jitter = lambda: float(rng.uniform(-1.2, 1.2))  # noqa: E731 — scan jitter
        col_x = {0: 60.0, 1: 460.0}
        row_h = 26.0
        top = 130.0

        for field in face.fields:
            x = col_x[field.column] + jitter()
            y = top + field.row * row_h + jitter()
            if y > PAGE_H - 50:
                continue
            filled = bool(rng.random() < self.fill_rate)
            value = _value_for(field.value_kind, fake) if filled else ""
            label_elements, label_box = layout_line(field.descriptor, x, y, label_style)
            row_elements, row_box, value_box = layout_label_value(
                field.descriptor, value, x, y, label_box.w + 6.0, label_style, value_style
            )
            elements += row_elements
            if filled and value_box is not None:
                annotations.append(
                    Annotation(field.entity_type, value, row_box, field.descriptor)
                )

        doc = Document(
            doc_id=doc_id,
            width=PAGE_W,
            height=PAGE_H,
            elements=elements,
            annotations=annotations,
            source="scan",
            dataset="D1",
            metadata={"face": face.face_id, "noise": "medium"},
        )
        doc.validate()
        return doc
