"""Dataset D1: structured tax forms (NIST Special Database 6 stand-in).

The real D1 holds 5595 scanned forms over 20 form faces from the 1988
IRS 1040 package, with 1369 labelled fields in total.  This generator
builds 20 deterministic form *faces* — fixed templates of labelled
field rows — totalling ~1369 fields, and renders per-document instances
with randomly filled values and mild scan jitter.

The IE task matches the paper's: for every form field, extract the
value text; field descriptors are matched by exact string comparison
against the holdout corpus (§5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.colors import rgb_to_lab
from repro.doc import Annotation, Document, ImageElement, TextElement
from repro.geometry import BBox
from repro.synth.layout import TextStyle, layout_label_value, layout_line, word_width
from repro.synth.providers import FakeProvider

D1_ENTITY_PREFIX = "d1_field"

PAGE_W, PAGE_H = 850.0, 1100.0

_FACE_SEED = 0x1040
_N_FACES = 20
_TOTAL_FIELDS = 1369

_DESCRIPTOR_PHRASES = [
    "Wages salaries tips etc",
    "Taxable interest income",
    "Tax-exempt interest income",
    "Dividend income",
    "Taxable refunds of state taxes",
    "Alimony received",
    "Business income or loss",
    "Capital gain or loss",
    "Capital gain distributions",
    "Other gains or losses",
    "Total IRA distributions",
    "Taxable amount",
    "Total pensions and annuities",
    "Rents royalties partnerships",
    "Farm income or loss",
    "Unemployment compensation",
    "Social security benefits",
    "Other income",
    "Total income",
    "Reimbursed expenses",
    "Your IRA deduction",
    "Spouse IRA deduction",
    "Self-employment tax deduction",
    "Self-employed health insurance",
    "Keogh retirement plan",
    "Penalty on early withdrawal",
    "Alimony paid",
    "Adjusted gross income",
    "Standard deduction",
    "Itemized deductions",
    "Exemption amount",
    "Taxable income",
    "Tax amount",
    "Additional taxes",
    "Credit for child care",
    "Credit for the elderly",
    "Foreign tax credit",
    "General business credit",
    "Total credits",
    "Self-employment tax",
    "Alternative minimum tax",
    "Recapture taxes",
    "Household employment taxes",
    "Total tax",
    "Federal income tax withheld",
    "Estimated tax payments",
    "Earned income credit",
    "Amount paid with extension",
    "Excess social security",
    "Total payments",
    "Amount overpaid",
    "Amount to be refunded",
    "Applied to estimated tax",
    "Amount you owe",
    "Estimated tax penalty",
    "Medical and dental expenses",
    "State and local taxes",
    "Real estate taxes",
    "Personal property taxes",
    "Home mortgage interest",
    "Deductible points",
    "Investment interest",
    "Gifts by cash or check",
    "Gifts other than cash",
    "Carryover from prior year",
    "Casualty and theft losses",
    "Unreimbursed employee expenses",
    "Tax preparation fees",
    "Other miscellaneous deductions",
    "Gross receipts or sales",
    "Returns and allowances",
    "Cost of goods sold",
    "Gross profit",
    "Advertising expense",
    "Car and truck expenses",
    "Commissions and fees",
    "Depletion deduction",
    "Depreciation deduction",
    "Employee benefit programs",
    "Insurance other than health",
    "Mortgage interest paid",
    "Legal and professional services",
    "Office expense",
    "Pension and profit sharing",
    "Rent or lease payments",
    "Repairs and maintenance",
    "Supplies expense",
    "Taxes and licenses",
    "Travel expense",
    "Meals and entertainment",
    "Utilities expense",
    "Wages paid",
]

_VALUE_KINDS = ("money", "money", "money", "ssn", "name", "date", "check")

_FORM_TITLES = [
    "Form 1040 U.S. Individual Income Tax Return",
    "Schedule A Itemized Deductions",
    "Schedule B Interest and Dividend Income",
    "Schedule C Profit or Loss From Business",
    "Schedule D Capital Gains and Losses",
    "Schedule E Supplemental Income and Loss",
    "Schedule F Farm Income and Expenses",
    "Schedule R Credit for the Elderly",
    "Schedule SE Self-Employment Tax",
    "Form 2106 Employee Business Expenses",
    "Form 2441 Child and Dependent Care Expenses",
    "Form 3800 General Business Credit",
    "Form 4136 Credit for Federal Tax on Fuels",
    "Form 4255 Recapture of Investment Credit",
    "Form 4562 Depreciation and Amortization",
    "Form 4684 Casualties and Thefts",
    "Form 4797 Sales of Business Property",
    "Form 6251 Alternative Minimum Tax",
    "Form 8283 Noncash Charitable Contributions",
    "Form 8606 Nondeductible IRA Contributions",
]


@dataclass(frozen=True)
class FormField:
    """One field of a form face template."""

    entity_type: str
    descriptor: str
    value_kind: str
    column: int  # 0 = left, 1 = right
    row: int


@dataclass(frozen=True)
class FormFace:
    """A deterministic form template."""

    face_id: int
    title: str
    fields: Tuple[FormField, ...]


def _fields_per_face() -> List[int]:
    base = _TOTAL_FIELDS // _N_FACES
    counts = [base] * _N_FACES
    for i in range(_TOTAL_FIELDS - base * _N_FACES):
        counts[i] += 1
    return counts


def build_faces() -> List[FormFace]:
    """The 20 deterministic form faces (seeded, stable across runs)."""
    faces: List[FormFace] = []
    counts = _fields_per_face()
    for face_id in range(_N_FACES):
        rng = np.random.default_rng((_FACE_SEED, face_id))
        n_fields = counts[face_id]
        order = rng.permutation(len(_DESCRIPTOR_PHRASES))
        fields: List[FormField] = []
        rows_per_col = (n_fields + 1) // 2
        for k in range(n_fields):
            phrase = _DESCRIPTOR_PHRASES[int(order[k % len(order)])]
            line_no = k + 1
            descriptor = f"{line_no} {phrase}"
            kind = _VALUE_KINDS[int(rng.integers(len(_VALUE_KINDS)))]
            fields.append(
                FormField(
                    entity_type=f"{D1_ENTITY_PREFIX}:{face_id:02d}:{line_no:03d}",
                    descriptor=descriptor,
                    value_kind=kind,
                    column=0 if k < rows_per_col else 1,
                    row=k if k < rows_per_col else k - rows_per_col,
                )
            )
        faces.append(FormFace(face_id, _FORM_TITLES[face_id], tuple(fields)))
    return faces


_FACES_CACHE: Optional[List[FormFace]] = None


def form_faces() -> List[FormFace]:
    global _FACES_CACHE
    if _FACES_CACHE is None:
        _FACES_CACHE = build_faces()
    return _FACES_CACHE


def all_field_descriptors() -> Dict[str, str]:
    """entity_type → descriptor across all faces (the paper's list of
    1369 form fields)."""
    return {f.entity_type: f.descriptor for face in form_faces() for f in face.fields}


def _value_for(kind: str, fake: FakeProvider) -> str:
    if kind == "money":
        return fake.money_amount()
    if kind == "ssn":
        return fake.ssn()
    if kind == "name":
        return fake.person_name(with_prefix_p=0.0)
    if kind == "date":
        return fake.date_phrase()
    if kind == "check":
        return "X"
    raise ValueError(f"unknown value kind {kind!r}")


class TaxFormGenerator:
    """Seeded generator of D1 form documents."""

    def __init__(self, seed: int = 0, fill_rate: float = 0.95):
        if not 0 < fill_rate <= 1:
            raise ValueError("fill_rate must be in (0, 1]")
        self.seed = seed
        self.fill_rate = fill_rate

    def generate(self, doc_id: str, index: int) -> Document:
        rng = np.random.default_rng((self.seed, index, 0xD1))
        fake = FakeProvider(rng)
        face = form_faces()[int(rng.integers(_N_FACES))]

        label_style = TextStyle(10.5, rgb_to_lab((50, 50, 50)))
        value_style = TextStyle(11.0, rgb_to_lab((10, 10, 60)), bold=False, font_family="mono")
        title_style = TextStyle(17.0, rgb_to_lab((20, 20, 20)), bold=True)

        elements: list = []
        annotations: List[Annotation] = []

        block, tbox = layout_line(face.title, 60, 50, title_style)
        elements += block
        block, _ = layout_line("Department of the Treasury - Internal Revenue Service 1988", 60, 78, TextStyle(9.0, rgb_to_lab((90, 90, 90))))
        elements += block
        elements.append(
            ImageElement("rule", BBox(60, 100, PAGE_W - 120, 3), rgb_to_lab((60, 60, 60)))
        )

        jitter = lambda: float(rng.uniform(-1.2, 1.2))  # noqa: E731 — scan jitter
        col_x = {0: 60.0, 1: 460.0}
        row_h = 26.0
        top = 130.0

        for field in face.fields:
            x = col_x[field.column] + jitter()
            y = top + field.row * row_h + jitter()
            if y > PAGE_H - 50:
                continue
            filled = bool(rng.random() < self.fill_rate)
            value = _value_for(field.value_kind, fake) if filled else ""
            label_elements, label_box = layout_line(field.descriptor, x, y, label_style)
            row_elements, row_box, value_box = layout_label_value(
                field.descriptor, value, x, y, label_box.w + 6.0, label_style, value_style
            )
            elements += row_elements
            if filled and value_box is not None:
                annotations.append(
                    Annotation(field.entity_type, value, row_box, field.descriptor)
                )

        doc = Document(
            doc_id=doc_id,
            width=PAGE_W,
            height=PAGE_H,
            elements=elements,
            annotations=annotations,
            source="scan",
            dataset="D1",
            metadata={"face": face.face_id, "noise": "medium"},
        )
        doc.validate()
        return doc
