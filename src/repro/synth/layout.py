"""Layout engine for synthetic documents.

Turns strings into positioned :class:`TextElement` words using a fixed
character-metric model (monospace-ish: advance ≈ 0.52 em).  Provides
word wrapping into a column, centred lines, and label/value pairs for
form rows.  Every function returns both the elements and the tight
bounding box of what was placed, so generators can stack blocks and
record ground-truth boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.colors import LabColor, rgb_to_lab
from repro.doc.elements import TextElement
from repro.geometry import BBox, enclosing_bbox

#: Horizontal advance per character as a fraction of the font size.
CHAR_ASPECT = 0.52
#: Space between words as a fraction of the font size.
SPACE_ASPECT = 0.30
#: Line advance as a fraction of the font size.
LINE_ADVANCE = 1.35

BLACK = rgb_to_lab((25, 25, 25))


def word_width(word: str, font_size: float) -> float:
    return max(len(word), 1) * CHAR_ASPECT * font_size


@dataclass
class TextStyle:
    """Typographic parameters of a placed run."""

    font_size: float = 12.0
    color: LabColor = BLACK
    bold: bool = False
    italic: bool = False
    font_family: str = "serif"

    def element(self, word: str, x: float, y: float) -> TextElement:
        return TextElement(
            text=word,
            bbox=BBox(x, y, word_width(word, self.font_size), self.font_size),
            color=self.color,
            font_size=self.font_size,
            bold=self.bold,
            italic=self.italic,
            font_family=self.font_family,
        )


def layout_line(
    text: str, x: float, y: float, style: TextStyle
) -> Tuple[List[TextElement], BBox]:
    """Place one line of words starting at ``(x, y)``; no wrapping."""
    elements: List[TextElement] = []
    cursor = x
    for word in text.split():
        element = style.element(word, cursor, y)
        elements.append(element)
        cursor = element.bbox.x2 + SPACE_ASPECT * style.font_size
    if not elements:
        return [], BBox(x, y, 0, style.font_size)
    return elements, enclosing_bbox([e.bbox for e in elements])


def layout_paragraph(
    text: str,
    x: float,
    y: float,
    max_width: float,
    style: TextStyle,
    align: str = "left",
) -> Tuple[List[TextElement], BBox]:
    """Wrap ``text`` into a column of width ``max_width``.

    ``align`` is ``"left"`` or ``"center"``.  Words wider than the
    column are placed on their own line (never split).
    """
    if max_width <= 0:
        raise ValueError("max_width must be positive")
    words = text.split()
    if not words:
        return [], BBox(x, y, 0, style.font_size)

    space = SPACE_ASPECT * style.font_size
    lines: List[List[str]] = [[]]
    widths: List[float] = [0.0]
    for word in words:
        w = word_width(word, style.font_size)
        needed = w if not lines[-1] else widths[-1] + space + w
        if lines[-1] and needed > max_width:
            lines.append([word])
            widths.append(w)
        else:
            lines[-1].append(word)
            widths[-1] = needed
    elements: List[TextElement] = []
    line_y = y
    for line, width in zip(lines, widths):
        line_x = x
        if align == "center":
            line_x = x + max(max_width - width, 0) / 2.0
        line_elements, _ = layout_line(" ".join(line), line_x, line_y, style)
        elements.extend(line_elements)
        line_y += LINE_ADVANCE * style.font_size
    return elements, enclosing_bbox([e.bbox for e in elements])


def layout_centered_line(
    text: str, center_x: float, y: float, style: TextStyle
) -> Tuple[List[TextElement], BBox]:
    """One line centred on ``center_x``."""
    words = text.split()
    total = sum(word_width(w, style.font_size) for w in words)
    total += SPACE_ASPECT * style.font_size * max(len(words) - 1, 0)
    return layout_line(text, center_x - total / 2.0, y, style)


def layout_label_value(
    label: str,
    value: str,
    x: float,
    y: float,
    value_offset: float,
    label_style: TextStyle,
    value_style: Optional[TextStyle] = None,
) -> Tuple[List[TextElement], BBox, Optional[BBox]]:
    """A form row: label at ``x``, value at ``x + value_offset``.

    Returns (elements, row bbox, value bbox).  The value bbox is what
    D1 ground truth annotates; ``None`` when the value is empty.
    """
    value_style = value_style or label_style
    elements, _ = layout_line(label, x, y, label_style)
    value_elements: List[TextElement] = []
    if value.strip():
        value_elements, value_box = layout_line(value, x + value_offset, y, value_style)
        elements = elements + value_elements
    else:
        value_box = None
    row_box = enclosing_bbox([e.bbox for e in elements]) if elements else BBox(x, y, 0, 1)
    return elements, row_box, value_box

