"""Synthetic corpora standing in for the paper's three datasets.

The paper evaluates on (D1) the NIST tax-form images, (D2) a scraped
collection of event posters, and (D3) scraped commercial real-estate
flyers — none of which can be downloaded here.  The generators in this
package produce statistically similar corpora *with ground truth*, so
every downstream code path (segmentation, OCR, pattern search,
disambiguation, evaluation) is exercised exactly as it would be on the
real data:

* :mod:`repro.synth.tax_forms` — D1: 20 structured form faces with
  labelled fields (exact-string field descriptors, low layout variance);
* :mod:`repro.synth.posters` — D2: visually ornate posters mixing
  "mobile capture" pages (rotation + heavy OCR noise) with digital
  PDFs, five annotated entity types;
* :mod:`repro.synth.flyers` — D3: HTML real-estate flyers with a
  parallel DOM, six annotated entity types;
* :mod:`repro.synth.websites` — the fixed-format listing sites the
  holdout corpus is scraped from (Table 2);
* :mod:`repro.synth.providers` — seeded fake-data provider (names,
  organisations, addresses, times, descriptions, ...);
* :mod:`repro.synth.corpus` — corpus containers, generation dispatch
  and train/test splitting;
* :mod:`repro.synth.holdout` — the Table 2 holdout-corpus scraper over
  the synthetic websites.

The dataset *schemas* (entity vocabularies, D1 form faces) live one
layer down in :mod:`repro.datasets`, shared with ``repro.core``.
"""

from repro.synth.corpus import Corpus, generate_corpus, train_test_split
from repro.synth.holdout import build_holdout_corpus
from repro.synth.providers import FakeProvider
from repro.synth.tax_forms import TaxFormGenerator, D1_ENTITY_PREFIX
from repro.synth.posters import PosterGenerator, D2_ENTITIES
from repro.synth.flyers import FlyerGenerator, D3_ENTITIES

__all__ = [
    "Corpus",
    "generate_corpus",
    "train_test_split",
    "build_holdout_corpus",
    "FakeProvider",
    "TaxFormGenerator",
    "PosterGenerator",
    "FlyerGenerator",
    "D1_ENTITY_PREFIX",
    "D2_ENTITIES",
    "D3_ENTITIES",
]
