"""Dataset D3: commercial real-estate flyers (HTML).

The paper's D3 holds 1200 online flyers from 20 broker websites, all in
HTML, with six annotated entity types (Table 4).  The generator builds
each flyer's layout and, in parallel, a DOM tree whose block nodes know
their rendered boxes — feeding both the image-based pipeline and the
HTML-only baselines (VIPS, Zhou et al.).

Key distributional properties preserved: a visually dominant broker
contact block (why Broker Name gains the most from visual features,
Table 8); phone/email appearing exactly once per flyer (why regex
baselines nearly tie there); balanced text/visual richness (Eq. 2's
balanced weights for D3).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.colors import rgb_to_lab
from repro.doc import Annotation, Document, ImageElement, TextElement
from repro.geometry import BBox, enclosing_bbox
from repro.html import HtmlNode, el
from repro.synth.layout import TextStyle, layout_line, layout_paragraph
from repro.synth.providers import FakeProvider

# The D3 entity vocabulary lives in :mod:`repro.datasets` (shared with
# the extraction side); re-exported here for its historical path.
from repro.datasets import D3_ENTITIES  # noqa: F401  (re-export)

PAGE_W, PAGE_H = 850.0, 1100.0

_BRAND_COLORS = [(20, 60, 120), (120, 30, 30), (30, 90, 50), (90, 60, 20)]
_BODY = (45, 45, 45)

#: 20 broker "websites" — each flyer belongs to one, biasing its styling.
BROKER_SITES = [f"broker{i:02d}.example.com" for i in range(20)]


class FlyerGenerator:
    """Seeded generator of D3 real-estate flyers (layout + DOM)."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def generate(self, doc_id: str, index: int) -> Document:
        """One flyer with its parallel DOM; deterministic in (seed, index)."""
        rng = np.random.default_rng((self.seed, index, 0xD3))
        fake = FakeProvider(rng)
        site = BROKER_SITES[int(rng.integers(len(BROKER_SITES)))]
        brand = rgb_to_lab(_BRAND_COLORS[int(rng.integers(len(_BRAND_COLORS)))])
        body_color = rgb_to_lab(_BODY)

        headline_style = TextStyle(float(rng.uniform(26, 36)), brand, bold=True)
        section_style = TextStyle(float(rng.uniform(17, 21)), brand, bold=True)
        info_style = TextStyle(float(rng.uniform(13, 16)), body_color)
        small_style = TextStyle(float(rng.uniform(11, 13)), body_color)

        elements: list = []
        annotations: List[Annotation] = []
        dom_body = el("body")
        y = float(rng.uniform(60, 100))

        # --- headline: tagline or the address itself ------------------
        address = fake.full_address()
        tagline = f"{fake.property_type().title()} For {'Sale' if rng.random() < 0.7 else 'Lease'}"
        headline = tagline if rng.random() < 0.6 else address
        block, box = layout_paragraph(headline, 70, y, 700, headline_style)
        elements += block
        dom_body.append(_dom_block("h1", headline, box, class_="headline"))
        if headline is address:
            annotations.append(Annotation("property_address", address, box))
        y = box.y2 + float(rng.uniform(40, 70))

        # --- photo ----------------------------------------------------
        photo_h = float(rng.uniform(200, 300))
        photo = ImageElement(
            "property-photo",
            BBox(70, y, float(rng.uniform(380, 520)), photo_h),
            rgb_to_lab((150, 160, 170)),
        )
        elements.append(photo)
        dom_body.append(HtmlNode("img", {"src": "photo.jpg", "class": "photo"}, bbox=photo.bbox))

        # --- attributes beside photo -----------------------------------
        attr_x = photo.bbox.x2 + float(rng.uniform(40, 70))
        tight = rng.random() < 0.5
        # Tight flyers push the attribute column down the photo's flank
        # so no axis-aligned whitespace band separates it from the
        # description that hugs the photo bottom (§6.3's xy-cut gap).
        attr_y = y + (photo_h * 0.45 if tight else float(rng.uniform(0, 30)))
        attrs_dom = el("ul", class_="attributes")
        if headline is not address:
            block, box = layout_paragraph(address, attr_x, attr_y, PAGE_W - attr_x - 50, info_style)
            elements += block
            annotations.append(Annotation("property_address", address, box))
            attrs_dom.append(_dom_block("li", address, box, class_="address"))
            attr_y = box.y2 + float(rng.uniform(22, 34))
        attr_style = section_style if tight else info_style
        attr_gap = (26.0, 38.0) if tight else (18.0, 30.0)
        size = fake.property_size()
        block, box = layout_line(size, attr_x, attr_y, attr_style)
        elements += block
        annotations.append(Annotation("property_size", size, box))
        attrs_dom.append(_dom_block("li", size, box, class_="size"))
        attr_y = box.y2 + float(rng.uniform(*attr_gap))
        price = fake.property_price()
        block, box = layout_line(price, attr_x, attr_y, section_style)
        elements += block
        attrs_dom.append(_dom_block("li", price, box, class_="price"))
        dom_body.append(attrs_dom)

        if tight:
            y = max(photo.bbox.y2, box.y2) + float(rng.uniform(4, 7))
        else:
            y = max(photo.bbox.y2, box.y2) + float(rng.uniform(50, 80))

        # --- description (emphasised lead + body, one logical area) ----
        lead_line = fake.choice(
            [
                "Prime retail opportunity!",
                "Spacious office space available!",
                "Newly renovated commercial building!",
                "Prime commercial property listing!",
            ]
        )
        block, lead_box = layout_line(lead_line, 70, y, section_style)
        elements += block
        y = lead_box.y2 + float(rng.uniform(4, 8))
        description = fake.property_description(n_sentences=int(rng.integers(2, 5)))
        block, box = layout_paragraph(description, 70, y, 640, small_style)
        elements += block
        annotations.append(
            Annotation("property_description", f"{lead_line} {description}", lead_box.union(box))
        )
        section = el("div", class_="details")
        section.append(_dom_block("h2", lead_line, lead_box))
        section.append(_dom_block("p", description, box, class_="description"))
        dom_body.append(section)
        y = box.y2 + float(rng.uniform(60, 110))

        # --- broker contact block (visually dominant) -------------------
        name = fake.person_name(with_prefix_p=0.1)
        phone = fake.phone()
        email = fake.email(name)
        agency = fake.org_name()
        contact = el("div", class_="contact")
        lead = ["Contact", "Listed by", "Exclusive agent", "Presented by"][
            int(rng.integers(4))
        ]
        block, nbox = layout_line(f"{lead}: {name} - {agency}", 70, y, section_style)
        elements += block
        annotations.append(Annotation("broker_name", name, nbox))
        contact.append(_dom_block("p", f"{lead}: {name} - {agency}", nbox, class_="broker"))
        y = nbox.y2 + float(rng.uniform(16, 26))
        block, pbox = layout_line(f"Phone: {phone}", 70, y, info_style)
        elements += block
        annotations.append(Annotation("broker_phone", phone, pbox))
        contact.append(_dom_block("p", f"Phone: {phone}", pbox, class_="phone"))
        y = pbox.y2 + float(rng.uniform(14, 24))
        block, ebox = layout_line(f"Email: {email}", 70, y, info_style)
        elements += block
        annotations.append(Annotation("broker_email", email, ebox))
        contact.append(_dom_block("p", f"Email: {email}", ebox, class_="email"))
        dom_body.append(contact)

        html = el("html")
        html.append(dom_body)
        html.bbox = BBox(0, 0, PAGE_W, PAGE_H)
        dom_body.bbox = BBox(0, 0, PAGE_W, PAGE_H)

        doc = Document(
            doc_id=doc_id,
            width=PAGE_W,
            height=PAGE_H,
            elements=elements,
            annotations=annotations,
            source="html",
            dataset="D3",
            html=html,
            metadata={"site": site, "noise": "low"},
        )
        doc.validate()
        return doc


def _dom_block(tag: str, text: str, box: BBox, class_: str = "") -> HtmlNode:
    node = el(tag, text)
    if class_:
        node.attrs["class"] = class_
    node.bbox = box
    return node
