"""Dataset D2: event posters and flyers.

The paper's D2 holds 2190 event documents — 1375 mobile captures and
815 digital PDFs — advertising local and national events, with five
annotated entity types (Table 3).  This generator reproduces the
distribution's key properties:

* ornate, heterogeneous layouts (several templates, randomised block
  order and spacing);
* visually salient entities: large-font titles, highlighted organizers;
* a "mobile" fraction (by default the paper's 1375/2190 ≈ 0.63) whose
  pages are rotated and flagged for heavy OCR noise;
* sparse text — posters are not verbose, which is why Eq. 2's weights
  put visual terms above textual ones for this corpus (§5.3.2).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.colors import LabColor, rgb_to_lab
from repro.doc import Annotation, Document, ImageElement, TextElement
from repro.geometry import BBox, enclosing_bbox
from repro.synth.layout import (
    TextStyle,
    layout_centered_line,
    layout_line,
    layout_paragraph,
)
from repro.synth.providers import FakeProvider

# The D2 entity vocabulary lives in :mod:`repro.datasets` (shared with
# the extraction side); re-exported here for its historical path.
from repro.datasets import D2_ENTITIES  # noqa: F401  (re-export)

PAGE_W, PAGE_H = 850.0, 1100.0

_TITLE_COLORS = [(140, 20, 30), (20, 40, 130), (110, 30, 110), (20, 90, 40), (30, 30, 30)]
_ACCENT_COLORS = [(230, 190, 60), (80, 140, 200), (200, 120, 80), (120, 180, 120)]
_BODY_COLOR = (40, 40, 40)

_ORGANIZER_LEADS = ["Hosted by", "Presented by", "Organized by", "Brought to you by"]
_PLACE_LEADS = ["", "Venue:", "Location:", "At"]
_TIME_LEADS = ["", "When:", "Date & Time:"]


class PosterGenerator:
    """Seeded generator of D2 poster documents."""

    def __init__(self, seed: int = 0, mobile_fraction: float = 1375 / 2190):
        self.seed = seed
        self.mobile_fraction = mobile_fraction

    def generate(self, doc_id: str, index: int) -> Document:
        """One poster; deterministic in (seed, index)."""
        rng = np.random.default_rng((self.seed, index, 0xD2))
        fake = FakeProvider(rng)
        template = int(rng.integers(4))
        builder = [self._centered, self._two_column, self._banner, self._split][template]
        elements, annotations = builder(rng, fake)

        is_mobile = bool(rng.random() < self.mobile_fraction)
        if is_mobile:
            magnitude = float(rng.uniform(3.0, 10.0))
            sign = -1.0 if rng.random() < 0.5 else 1.0
            angle = sign * magnitude * math.pi / 180.0
            elements = [
                e.with_bbox(e.bbox.rotate(angle, PAGE_W / 2, PAGE_H / 2))
                if isinstance(e, TextElement)
                else ImageElement(e.image_data, e.bbox.rotate(angle, PAGE_W / 2, PAGE_H / 2), e.color)
                for e in elements
            ]
            annotations = [
                Annotation(a.entity_type, a.text, a.bbox.rotate(angle, PAGE_W / 2, PAGE_H / 2))
                for a in annotations
            ]

        doc = Document(
            doc_id=doc_id,
            width=PAGE_W,
            height=PAGE_H,
            elements=elements,
            annotations=annotations,
            source="mobile" if is_mobile else "pdf",
            dataset="D2",
            metadata={"template": template, "noise": "high" if is_mobile else "low"},
        )
        doc.validate()
        return doc

    # ------------------------------------------------------------------
    # Shared content blocks
    # ------------------------------------------------------------------
    def _styles(self, rng) -> Tuple[TextStyle, TextStyle, TextStyle, TextStyle]:
        title_color = rgb_to_lab(_TITLE_COLORS[int(rng.integers(len(_TITLE_COLORS)))])
        body = rgb_to_lab(_BODY_COLOR)
        title = TextStyle(float(rng.uniform(34, 52)), title_color, bold=True)
        heading = TextStyle(float(rng.uniform(20, 28)), body, bold=True)
        info = TextStyle(float(rng.uniform(15, 19)), body)
        small = TextStyle(float(rng.uniform(11, 13)), body)
        return title, heading, info, small

    def _title_block(
        self, fake: FakeProvider, style: TextStyle, center_x: float, y: float, max_width: float
    ) -> Tuple[List[TextElement], Annotation, float]:
        title = fake.event_title()
        elements, box = layout_paragraph(
            title, center_x - max_width / 2, y, max_width, style, align="center"
        )
        return elements, Annotation("event_title", title, box), box.y2

    def _organizer_block(
        self, rng, fake: FakeProvider, style: TextStyle, x: float, y: float, centered_on: Optional[float]
    ) -> Tuple[List[TextElement], Annotation, float]:
        lead = _ORGANIZER_LEADS[int(rng.integers(len(_ORGANIZER_LEADS)))]
        organizer = fake.organizer()
        text = f"{lead} {organizer}"
        if centered_on is not None:
            elements, box = layout_centered_line(text, centered_on, y, style)
        else:
            elements, box = layout_line(text, x, y, style)
        return elements, Annotation("event_organizer", organizer, box), box.y2

    def _time_block(
        self, rng, fake: FakeProvider, style: TextStyle, x: float, y: float, centered_on: Optional[float]
    ) -> Tuple[List[TextElement], Annotation, float]:
        lead = _TIME_LEADS[int(rng.integers(len(_TIME_LEADS)))]
        when = fake.event_time()
        text = f"{lead} {when}".strip()
        if centered_on is not None:
            elements, box = layout_centered_line(text, centered_on, y, style)
        else:
            elements, box = layout_paragraph(text, x, y, min(330.0, PAGE_W - x - 40), style)
        return elements, Annotation("event_time", when, box), box.y2

    def _place_block(
        self, rng, fake: FakeProvider, style: TextStyle, x: float, y: float,
        max_width: float, centered_on: Optional[float],
    ) -> Tuple[List[TextElement], Annotation, float]:
        lead = _PLACE_LEADS[int(rng.integers(len(_PLACE_LEADS)))]
        place = f"{fake.venue()}, {fake.full_address()}"
        text = f"{lead} {place}".strip()
        if centered_on is not None:
            elements, box = layout_paragraph(
                text, centered_on - max_width / 2, y, max_width, style, align="center"
            )
        else:
            elements, box = layout_paragraph(text, x, y, max_width, style)
        return elements, Annotation("event_place", place, box), box.y2

    _DESC_LEADS = (
        "Free admission all day!",
        "Live performances all evening!",
        "Doors open early!",
        "Join the celebration!",
    )

    def _description_block(
        self, rng, fake: FakeProvider, style: TextStyle, x: float, y: float, max_width: float
    ) -> Tuple[List[TextElement], Annotation, float]:
        elements: List[TextElement] = []
        top_y = y
        lead_box = None
        if rng.random() < 0.6:
            # An emphasised lead line opens the description area — same
            # semantics, different styling (the implicit-modifier case
            # semantic merging must repair, §5.1.2).
            lead = self._DESC_LEADS[int(rng.integers(len(self._DESC_LEADS)))]
            accent = rgb_to_lab(_TITLE_COLORS[int(rng.integers(len(_TITLE_COLORS)))])
            lead_style = TextStyle(style.font_size * 1.5, accent, bold=True)
            lead_elements, lead_box = layout_line(lead, x, y, lead_style)
            elements += lead_elements
            y = lead_box.y2 + float(rng.uniform(4, 8))
        description = fake.event_description(n_sentences=int(rng.integers(2, 4)))
        para_elements, box = layout_paragraph(description, x, y, max_width, style)
        elements += para_elements
        area = box if lead_box is None else lead_box.union(box)
        text = description if lead_box is None else f"{lead} {description}"
        return elements, Annotation("event_description", text, area), box.y2

    def _decoration(self, rng) -> ImageElement:
        color = rgb_to_lab(_ACCENT_COLORS[int(rng.integers(len(_ACCENT_COLORS)))])
        w = float(rng.uniform(120, 300))
        h = float(rng.uniform(60, 160))
        x = float(rng.uniform(60, PAGE_W - w - 60))
        y = float(rng.uniform(60, 180))
        return ImageElement("decorative-art", BBox(x, y, w, h), color)

    # ------------------------------------------------------------------
    # Templates
    # ------------------------------------------------------------------
    def _centered(self, rng, fake) -> Tuple[list, List[Annotation]]:
        title_style, heading, info, small = self._styles(rng)
        cx = PAGE_W / 2
        elements: list = []
        annotations: List[Annotation] = []
        y = float(rng.uniform(90, 170))

        if rng.random() < 0.5:
            art = self._decoration(rng)
            elements.append(art)
            y = max(y, art.bbox.y2 + 40)

        block, ann, y = self._title_block(fake, title_style, cx, y, 640)
        elements += block
        annotations.append(ann)
        tight = rng.random() < 0.4
        y += float(rng.uniform(4, 7)) if tight else float(rng.uniform(50, 90))

        block, ann, y = self._time_block(rng, fake, heading, 0, y, cx)
        elements += block
        annotations.append(ann)
        y += float(rng.uniform(40, 70))

        block, ann, y = self._place_block(rng, fake, info, 0, y, 560, cx)
        elements += block
        annotations.append(ann)
        y += float(rng.uniform(45, 80))

        block, ann, y = self._description_block(rng, fake, small, (PAGE_W - 560) / 2, y, 560)
        elements += block
        annotations.append(ann)
        y += float(rng.uniform(50, 90))

        block, ann, y = self._organizer_block(rng, fake, heading, 0, y, cx)
        elements += block
        annotations.append(ann)
        return elements, annotations

    def _two_column(self, rng, fake) -> Tuple[list, List[Annotation]]:
        title_style, heading, info, small = self._styles(rng)
        elements: list = []
        annotations: List[Annotation] = []
        y = float(rng.uniform(80, 140))

        block, ann, y = self._title_block(fake, title_style, PAGE_W / 2, y, 700)
        elements += block
        annotations.append(ann)
        top = y + float(rng.uniform(60, 100))

        left_x, left_w = 70.0, 330.0
        right_x, right_w = 470.0, 320.0

        y_left = top
        block, ann, y_left = self._description_block(rng, fake, small, left_x, y_left, left_w)
        elements += block
        annotations.append(ann)

        y_right = top
        block, ann, y_right = self._time_block(rng, fake, heading, right_x, y_right, None)
        elements += block
        annotations.append(ann)
        y_right += float(rng.uniform(40, 60))
        block, ann, y_right = self._place_block(rng, fake, info, right_x, y_right, right_w, None)
        elements += block
        annotations.append(ann)
        y_right += float(rng.uniform(40, 60))
        block, ann, y_right = self._organizer_block(rng, fake, heading, right_x, y_right, None)
        elements += block
        annotations.append(ann)
        return elements, annotations

    def _banner(self, rng, fake) -> Tuple[list, List[Annotation]]:
        title_style, heading, info, small = self._styles(rng)
        elements: list = []
        annotations: List[Annotation] = []
        banner_color = rgb_to_lab(_ACCENT_COLORS[int(rng.integers(len(_ACCENT_COLORS)))])
        banner_h = float(rng.uniform(180, 240))
        elements.append(ImageElement("banner", BBox(0, 0, PAGE_W, banner_h), banner_color))

        title_style = TextStyle(title_style.font_size, rgb_to_lab((250, 250, 250)), bold=True)
        block, ann, _ = self._title_block(fake, title_style, PAGE_W / 2, banner_h / 2 - title_style.font_size, 700)
        elements += block
        annotations.append(ann)

        y = banner_h + float(rng.uniform(60, 100))
        block, ann, y = self._time_block(rng, fake, heading, 80, y, None)
        elements += block
        annotations.append(ann)
        y += float(rng.uniform(40, 60))
        block, ann, y = self._place_block(rng, fake, info, 80, y, 420, None)
        elements += block
        annotations.append(ann)

        y2 = y + float(rng.uniform(60, 110))
        block, ann, y2 = self._description_block(rng, fake, small, 80, y2, 620)
        elements += block
        annotations.append(ann)

        y3 = y2 + float(rng.uniform(60, 100))
        block, ann, _ = self._organizer_block(rng, fake, heading, 80, y3, None)
        elements += block
        annotations.append(ann)
        return elements, annotations

    def _split(self, rng, fake) -> Tuple[list, List[Annotation]]:
        title_style, heading, info, small = self._styles(rng)
        elements: list = []
        annotations: List[Annotation] = []
        y = float(rng.uniform(90, 150))

        block, ann, y = self._title_block(fake, title_style, PAGE_W / 2, y, 680)
        elements += block
        annotations.append(ann)
        tight = rng.random() < 0.4
        y += float(rng.uniform(4, 7)) if tight else float(rng.uniform(70, 110))

        # Info cards side by side: time | place
        block, ann, y_a = self._time_block(rng, fake, info, 90, y, None)
        elements += block
        annotations.append(ann)
        block, ann, y_b = self._place_block(rng, fake, info, 460, y, 310, None)
        elements += block
        annotations.append(ann)
        y = max(y_a, y_b) + float(rng.uniform(60, 100))

        block, ann, y = self._organizer_block(rng, fake, heading, 0, y, PAGE_W / 2)
        elements += block
        annotations.append(ann)
        y += float(rng.uniform(60, 100))

        block, ann, y = self._description_block(rng, fake, small, 120, y, 610)
        elements += block
        annotations.append(ann)
        return elements, annotations
