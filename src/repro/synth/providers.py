"""Seeded fake-data provider.

All generators draw their surface realisations (names, venues,
addresses, phone numbers, descriptions, ...) from this provider so the
corpora and the holdout websites share a vocabulary distribution — the
precondition for distant supervision to work, as on the real data.

Roughly a fifth of person/organisation names are *out of gazetteer*
(syllable-synthesised), so recognisers cannot succeed by lexicon
memorisation alone.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.nlp import gazetteers as gaz

_FIRST = sorted(gaz.FIRST_NAMES)
_LAST = sorted(gaz.LAST_NAMES)
_CITIES = sorted(gaz.CITIES)
_STATE_AB = sorted(s.upper() for s in gaz.STATE_ABBREVS)
_STREETS = sorted(gaz.STREET_NAMES)
_STREET_SUFFIX = ["Street", "Avenue", "Boulevard", "Drive", "Lane", "Road", "Court", "Way", "Parkway"]
_ORG_HEADS = sorted(gaz.ORG_HEAD_WORDS)
_ORG_KINDS = ["Arts", "Music", "Community", "Cultural", "Realty", "Property", "Development", "Events", "Heritage", "Science"]
_ORG_SUFFIX = ["Society", "Foundation", "Association", "Group", "LLC", "Inc", "Council", "Club", "Partners", "Realty"]
_VENUES = sorted(gaz.VENUE_WORDS)
_EVENT_KINDS = sorted(gaz.EVENT_WORDS)

_SYLLABLES = "ka ri to na mi lo ve sa du pe zan bor tel gra fen dor mak lin".split()

_EVENT_ADJ = "Annual Grand Spring Summer Autumn Winter Downtown Community Regional International Midnight Acoustic Classical Modern Family".split()
_EVENT_TOPICS = (
    "Jazz Folk Blues Poetry Film Science History Art Food Wine Craft Coding "
    "Photography Pottery Dance Theatre Chess Astronomy Robotics Gardening"
).split()

_DESC_SENTENCES = [
    "Join us for an evening of {topic} with friends and neighbors",
    "Doors open early and seating is limited so arrive on time",
    "Light refreshments and drinks will be served at the venue",
    "All ages are welcome and admission is free for students",
    "Bring your family and enjoy live performances all night",
    "Proceeds will benefit the local community {org_kind} fund",
    "Parking is available behind the building on a first come basis",
    "Tickets are available online and at the door while they last",
    "Meet the artists after the show during the closing reception",
    "Raffle prizes will be announced during the intermission",
]

_PROPERTY_SENTENCES = [
    "Prime {ptype} space in the heart of {city}",
    "Recently renovated {ptype} with modern finishes throughout",
    "Excellent visibility and easy access to the highway",
    "Ample on site parking with {n} dedicated spaces",
    "Flexible floor plan suitable for retail or office use",
    "Close to shopping dining and public transportation",
    "New roof and HVAC installed within the last {n} years",
    "Ideal location for a growing business or investor",
    "Zoned for commercial use with signage opportunities",
    "Hardwood floors large windows and abundant natural light",
]

_PROPERTY_TYPES = ["office", "retail", "warehouse", "building", "suite", "land/lot", "condo", "duplex"]


class FakeProvider:
    """Deterministic fake-data factory over a ``numpy`` generator."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng

    # ------------------------------------------------------------------
    # Low-level choice helpers
    # ------------------------------------------------------------------
    def choice(self, items: Sequence):
        return items[int(self.rng.integers(len(items)))]

    def some(self, items: Sequence, k: int) -> List:
        idx = self.rng.choice(len(items), size=min(k, len(items)), replace=False)
        return [items[int(i)] for i in idx]

    def chance(self, p: float) -> bool:
        return bool(self.rng.random() < p)

    def _title(self, word: str) -> str:
        return word[:1].upper() + word[1:]

    def _synth_name(self) -> str:
        n = int(self.rng.integers(2, 4))
        return self._title("".join(self.choice(_SYLLABLES) for _ in range(n)))

    # ------------------------------------------------------------------
    # People / organisations
    # ------------------------------------------------------------------
    def first_name(self) -> str:
        if self.chance(0.2):
            return self._synth_name()
        return self._title(self.choice(_FIRST))

    def last_name(self) -> str:
        if self.chance(0.2):
            return self._synth_name()
        return self._title(self.choice(_LAST))

    def person_name(self, with_prefix_p: float = 0.2) -> str:
        name = f"{self.first_name()} {self.last_name()}"
        if self.chance(with_prefix_p):
            prefix = self.choice(["Dr.", "Prof.", "Mr.", "Ms.", "Mrs."])
            name = f"{prefix} {name}"
        return name

    def org_name(self) -> str:
        head = self._title(self.choice(_ORG_HEADS)) if self.chance(0.8) else self._synth_name()
        kind = self.choice(_ORG_KINDS)
        suffix = self.choice(_ORG_SUFFIX)
        if self.chance(0.3):
            return f"{head} {suffix}"
        return f"{head} {kind} {suffix}"

    def organizer(self) -> str:
        """Either a person or an organisation (posters use both)."""
        return self.person_name() if self.chance(0.45) else self.org_name()

    # ------------------------------------------------------------------
    # Places
    # ------------------------------------------------------------------
    def city(self) -> str:
        return self._title(self.choice(_CITIES))

    def state_abbrev(self) -> str:
        return self.choice(_STATE_AB)

    def zip_code(self) -> str:
        return f"{int(self.rng.integers(10000, 99999)):05d}"

    def street_address(self) -> str:
        number = int(self.rng.integers(1, 9999))
        street = self._title(self.choice(_STREETS))
        suffix = self.choice(_STREET_SUFFIX)
        return f"{number} {street} {suffix}"

    def full_address(self, with_zip_p: float = 0.8) -> str:
        addr = f"{self.street_address()}, {self.city()}, {self.state_abbrev()}"
        if self.chance(with_zip_p):
            addr += f" {self.zip_code()}"
        return addr

    def venue(self) -> str:
        venue_word = self._title(self.choice(_VENUES))
        owner = self._title(self.choice(_ORG_HEADS))
        return f"{owner} {venue_word}"

    # ------------------------------------------------------------------
    # Contact details
    # ------------------------------------------------------------------
    def phone(self) -> str:
        a = int(self.rng.integers(200, 989))
        b = int(self.rng.integers(200, 999))
        c = int(self.rng.integers(0, 9999))
        style = int(self.rng.integers(3))
        if style == 0:
            return f"({a}) {b}-{c:04d}"
        if style == 1:
            return f"{a}-{b}-{c:04d}"
        return f"{a}.{b}.{c:04d}"

    def email(self, name: str | None = None) -> str:
        if name is None:
            name = f"{self.first_name()}.{self.last_name()}"
        user = name.lower().replace(" ", ".").replace("..", ".").strip(".")
        user = "".join(ch for ch in user if ch.isalnum() or ch in "._-")
        domain = self.choice(
            ["example.com", "mailhub.net", "realtypro.org", "eventmail.io", "postbox.co"]
        )
        return f"{user}@{domain}"

    # ------------------------------------------------------------------
    # Times / dates
    # ------------------------------------------------------------------
    def clock_time(self) -> str:
        hour = int(self.rng.integers(1, 12))
        minute = self.choice([0, 0, 15, 30, 30, 45])
        meridiem = self.choice(["AM", "PM", "pm", "am"])
        if minute == 0 and self.chance(0.4):
            return f"{hour} {meridiem}"
        return f"{hour}:{minute:02d} {meridiem}"

    def date_phrase(self) -> str:
        month = self._title(self.choice(sorted(gaz.MONTHS - {"may"})))[:].split()[0]
        day = int(self.rng.integers(1, 28))
        style = int(self.rng.integers(4))
        if style == 0:
            return f"{month} {day}"
        if style == 1:
            return f"{month} {day}, {int(self.rng.integers(2024, 2027))}"
        if style == 2:
            weekday = self._title(self.choice(sorted(gaz.WEEKDAYS)))
            return f"{weekday}, {month} {day}"
        return f"{int(self.rng.integers(1,12))}/{day}/{int(self.rng.integers(24,27)):02d}"

    def event_time(self) -> str:
        base = f"{self.date_phrase()} at {self.clock_time()}"
        if self.chance(0.3):
            base = f"{self.date_phrase()}, {self.clock_time()} - {self.clock_time()}"
        return base

    # ------------------------------------------------------------------
    # Event fields
    # ------------------------------------------------------------------
    def event_title(self) -> str:
        adj = self.choice(_EVENT_ADJ)
        topic = self.choice(_EVENT_TOPICS)
        kind = self._title(self.choice(_EVENT_KINDS))
        style = int(self.rng.integers(4))
        if style == 0:
            return f"The {adj} {topic} {kind}"
        if style == 1:
            return f"{topic} {kind} {int(self.rng.integers(2024, 2027))}"
        if style == 2:
            return f"{adj} {topic} {kind}"
        return f"{self.city()} {topic} {kind}"

    def event_description(self, n_sentences: int = 2) -> str:
        sentences = self.some(_DESC_SENTENCES, n_sentences)
        topic = self.choice(_EVENT_TOPICS).lower()
        org_kind = self.choice(_ORG_KINDS).lower()
        return ". ".join(
            s.format(topic=topic, org_kind=org_kind) for s in sentences
        ) + "."

    # ------------------------------------------------------------------
    # Property fields
    # ------------------------------------------------------------------
    def property_size(self) -> str:
        style = int(self.rng.integers(4))
        if style == 0:
            return f"{int(self.rng.integers(1, 7))} beds, {int(self.rng.integers(1, 5))} baths"
        if style == 1:
            sqft = int(self.rng.integers(8, 120)) * 100
            return f"{sqft:,} sqft"
        if style == 2:
            acres = round(float(self.rng.uniform(0.2, 12.0)), 3)
            return f"{acres} acres"
        return f"{int(self.rng.integers(2, 40))},{int(self.rng.integers(0, 999)):03d} square feet"

    def property_price(self) -> str:
        amount = int(self.rng.integers(80, 4500)) * 1000
        if self.chance(0.25):
            return f"${amount // 1000}K"
        return f"${amount:,}"

    def property_description(self, n_sentences: int = 2) -> str:
        sentences = self.some(_PROPERTY_SENTENCES, n_sentences)
        return ". ".join(
            s.format(
                ptype=self.choice(_PROPERTY_TYPES),
                city=self.city(),
                n=int(self.rng.integers(2, 12)),
            )
            for s in sentences
        ) + "."

    def property_type(self) -> str:
        return self.choice(_PROPERTY_TYPES)

    # ------------------------------------------------------------------
    # Form (D1) fields
    # ------------------------------------------------------------------
    def money_amount(self) -> str:
        return f"{int(self.rng.integers(0, 250000)):,}"

    def ssn(self) -> str:
        return f"{int(self.rng.integers(100,999))}-{int(self.rng.integers(10,99))}-{int(self.rng.integers(1000,9999))}"

    def word_gibberish(self, n: int) -> str:
        return " ".join(self._synth_name().lower() for _ in range(n))
