"""Corpus containers and generation dispatch."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.doc import Document
from repro.synth.flyers import D3_ENTITIES, FlyerGenerator
from repro.synth.posters import D2_ENTITIES, PosterGenerator
from repro.synth.tax_forms import TaxFormGenerator

#: Paper corpus sizes (we default to smaller slices for tractable runs;
#: pass ``n`` explicitly to scale up).
PAPER_SIZES = {"D1": 5595, "D2": 2190, "D3": 1200}
DEFAULT_SIZES = {"D1": 60, "D2": 80, "D3": 60}


@dataclass
class Corpus:
    """A generated dataset slice."""

    dataset: str
    documents: List[Document] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self):
        return iter(self.documents)

    def __getitem__(self, i: int) -> Document:
        return self.documents[i]

    def entity_types(self) -> List[str]:
        seen: Dict[str, None] = {}
        for doc in self.documents:
            for a in doc.annotations:
                seen.setdefault(a.entity_type, None)
        return list(seen)

    def total_annotations(self) -> int:
        return sum(len(d.annotations) for d in self.documents)

    def by_source(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for doc in self.documents:
            counts[doc.source] = counts.get(doc.source, 0) + 1
        return counts


def generate_corpus(dataset: str, n: int = 0, seed: int = 0) -> Corpus:
    """Generate ``n`` documents of ``dataset`` ("D1" | "D2" | "D3").

    ``n == 0`` uses :data:`DEFAULT_SIZES`.  Deterministic in
    ``(dataset, n, seed)``; document ``i`` is identical across corpus
    sizes, so growing a corpus extends it rather than reshuffling.
    """
    dataset = dataset.upper()
    if dataset not in PAPER_SIZES:
        raise ValueError(f"unknown dataset {dataset!r} (expected D1/D2/D3)")
    if n <= 0:
        n = DEFAULT_SIZES[dataset]
    if dataset == "D1":
        generator = TaxFormGenerator(seed)
    elif dataset == "D2":
        generator = PosterGenerator(seed)
    else:
        generator = FlyerGenerator(seed)
    documents = [generator.generate(f"{dataset}-{i:05d}", i) for i in range(n)]
    return Corpus(dataset, documents)


def train_test_split(
    corpus: Corpus, train_fraction: float, seed: int = 0
) -> Tuple[Corpus, Corpus]:
    """Shuffled split (ReportMiner's 60/40 protocol uses this)."""
    if not 0 < train_fraction < 1:
        raise ValueError("train_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(corpus))
    cut = int(round(train_fraction * len(corpus)))
    train = [corpus.documents[int(i)] for i in order[:cut]]
    test = [corpus.documents[int(i)] for i in order[cut:]]
    return Corpus(corpus.dataset, train), Corpus(corpus.dataset, test)


# ``entity_vocabulary`` moved to :mod:`repro.datasets` (the schema
# layer shared with ``repro.core.select``); re-exported for callers of
# the historical path.
from repro.datasets import entity_vocabulary  # noqa: E402, F401  (re-export)
