"""Holdout-corpus scraper (§5.2.1, Table 2) over the synthetic websites.

Step (a)–(c) of the paper's holdout construction: query each dataset's
Table 2 sources, parse the rendered HTML back, and run the source's web
wrapper over it.  The corpus *container* and the pattern-distribution
stopping rule live in :mod:`repro.core.holdout`; this module sits above
the synth layer so ``repro.core`` never imports ``repro.synth``
(layering rule ``LAYER001``).
"""

from __future__ import annotations

from typing import Optional

from repro.core.holdout import HoldoutCorpus
from repro.html import parse_html
from repro.html.wrapper import extract_records
from repro.synth.websites import HOLDOUT_SOURCES


def build_holdout_corpus(
    dataset: str,
    seed: int = 0,
    max_entries_per_entity: Optional[int] = None,
) -> HoldoutCorpus:
    """Scrape the dataset's Table 2 sources into a holdout corpus.

    The full scrape → parse → wrap path runs: sites are serialised to
    HTML strings, parsed back and traversed by each source's wrapper
    rule.  For D2 the paper keeps the first 500 results per query; for
    D3 the top 100 per query; D1 takes the complete field index.
    """
    dataset = dataset.upper()
    if dataset not in HOLDOUT_SOURCES:
        raise ValueError(f"unknown dataset {dataset!r}")
    corpus = HoldoutCorpus(dataset)
    defaults = {"D1": None, "D2": 250, "D3": 100}
    for builder, wrapper, _note in HOLDOUT_SOURCES[dataset]:
        if dataset == "D1":
            html = builder(seed)
        else:
            html = builder(seed, defaults[dataset])
        root = parse_html(html)
        for record in extract_records(root, wrapper):
            for entity_type, text in record.items():
                if dataset == "D1":
                    # D1 records are (field_id, descriptor) rows: the
                    # descriptor is the annotated text of the field id.
                    continue
                if max_entries_per_entity is not None and len(
                    corpus.texts_for(entity_type)
                ) >= max_entries_per_entity:
                    continue
                corpus.add(entity_type, text)
        if dataset == "D1":
            for record in extract_records(root, wrapper):
                corpus.add(record["field_id"], record["descriptor"])
    return corpus
