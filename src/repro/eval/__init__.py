"""Evaluation protocol (§6.2).

Two-phase evaluation against annotated ground truth:

* **Localisation** (Table 5) — block proposals match a ground-truth
  entity box when IoU > 0.65 (the PASCAL-VOC criterion [12]); labels
  are ignored at this stage.
* **End-to-end** (Tables 6–8) — an extraction is accurate when it is
  localised (IoU > 0.65) *and* its predicted entity type matches the
  ground-truth label.

Both report precision and recall; Tables 6/8 add ΔF1 against the
text-only baseline and §6.4's paired t-test (p < 0.05).
"""

from repro.eval.metrics import (
    PRF,
    end_to_end_scores,
    f1_score,
    match_extractions,
    segmentation_scores,
)
from repro.eval.significance import paired_t_test

__all__ = [
    "PRF",
    "f1_score",
    "segmentation_scores",
    "match_extractions",
    "end_to_end_scores",
    "paired_t_test",
]
