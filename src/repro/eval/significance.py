"""Statistical significance of paired comparisons (§6.4).

The paper reports that VS2's improvement over the text-only baseline is
statistically significant (paired t-test, p < 0.05) on all datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class TTestResult:
    statistic: float
    p_value: float
    mean_difference: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def paired_t_test(a: Sequence[float], b: Sequence[float]) -> TTestResult:
    """Paired t-test of series ``a`` against series ``b``.

    ``a`` and ``b`` are per-document scores of two systems on the same
    corpus, in the same order.  A degenerate (all-equal-differences)
    input returns p = 1.0 rather than NaN.
    """
    if len(a) != len(b):
        raise ValueError("paired series must have equal length")
    if len(a) < 2:
        raise ValueError("need at least two paired observations")
    diffs = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    if np.allclose(diffs.std(), 0.0):
        return TTestResult(0.0, 1.0, float(diffs.mean()))
    statistic, p_value = stats.ttest_rel(a, b)
    return TTestResult(float(statistic), float(p_value), float(diffs.mean()))
