"""Precision / recall computation for both evaluation phases."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.select import Extraction
from repro.doc import Annotation, Document
from repro.geometry import BBox, pairwise_iou

IOU_THRESHOLD = 0.65


@dataclass
class PRF:
    """Precision / recall / F1 with raw counts."""

    tp: int = 0
    fp: int = 0
    fn: int = 0

    @property
    def precision(self) -> float:
        return self.tp / (self.tp + self.fp) if (self.tp + self.fp) else 0.0

    @property
    def recall(self) -> float:
        return self.tp / (self.tp + self.fn) if (self.tp + self.fn) else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def add(self, other: "PRF") -> "PRF":
        self.tp += other.tp
        self.fp += other.fp
        self.fn += other.fn
        return self

    def __repr__(self) -> str:
        return f"PRF(P={self.precision:.4f}, R={self.recall:.4f}, F1={self.f1:.4f})"


def f1_score(precision: float, recall: float) -> float:
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


# ----------------------------------------------------------------------
# Phase 1: segmentation / localisation (Table 5)
# ----------------------------------------------------------------------
def segmentation_scores(
    proposals: Sequence[BBox],
    annotations: Sequence[Annotation],
    iou_threshold: float = IOU_THRESHOLD,
) -> PRF:
    """Label-blind greedy one-to-one matching of proposals to GT boxes.

    Pairs are matched best-IoU-first (VOC protocol); a proposal matched
    to a GT box counts as a true positive, an unmatched proposal as a
    false positive, an uncovered GT box as a false negative.
    """
    if not proposals:
        return PRF(0, 0, len(annotations))
    if not annotations:
        return PRF(0, len(proposals), 0)
    iou = pairwise_iou(list(proposals), [a.bbox for a in annotations])
    pairs: List[Tuple[float, int, int]] = [
        (float(iou[i, j]), i, j)
        for i in range(len(proposals))
        for j in range(len(annotations))
        if iou[i, j] > iou_threshold
    ]
    pairs.sort(reverse=True)
    used_p: set = set()
    used_a: set = set()
    tp = 0
    for _, i, j in pairs:
        if i in used_p or j in used_a:
            continue
        used_p.add(i)
        used_a.add(j)
        tp += 1
    return PRF(tp, len(proposals) - tp, len(annotations) - tp)


def corpus_segmentation_scores(
    per_doc: Iterable[Tuple[Sequence[BBox], Sequence[Annotation]]],
    iou_threshold: float = IOU_THRESHOLD,
) -> PRF:
    total = PRF()
    for proposals, annotations in per_doc:
        total.add(segmentation_scores(proposals, annotations, iou_threshold))
    return total


# ----------------------------------------------------------------------
# Phase 2: end-to-end (Tables 6, 7, 8)
# ----------------------------------------------------------------------
def match_extractions(
    extractions: Sequence[Extraction],
    annotations: Sequence[Annotation],
    iou_threshold: float = IOU_THRESHOLD,
) -> Dict[str, PRF]:
    """Per-entity-type scores for one document.

    An extraction is a true positive when a ground-truth annotation of
    the same entity type overlaps it with IoU above the threshold.
    """
    scores: Dict[str, PRF] = {}
    matched_annotations: set = set()
    for e in extractions:
        prf = scores.setdefault(e.entity_type, PRF())
        hit = None
        for idx, a in enumerate(annotations):
            if idx in matched_annotations or a.entity_type != e.entity_type:
                continue
            if a.bbox.iou(e.bbox) > iou_threshold or a.bbox.iou(e.span_bbox) > iou_threshold:
                hit = idx
                break
        if hit is None:
            prf.fp += 1
        else:
            matched_annotations.add(hit)
            prf.tp += 1
    for idx, a in enumerate(annotations):
        if idx not in matched_annotations:
            scores.setdefault(a.entity_type, PRF()).fn += 1
    return scores


def end_to_end_scores(
    results: Iterable[Tuple[Sequence[Extraction], Document]],
    iou_threshold: float = IOU_THRESHOLD,
) -> Tuple[PRF, Dict[str, PRF]]:
    """Aggregate end-to-end scores over a corpus.

    Returns the overall PRF and the per-entity-type breakdown.
    """
    overall = PRF()
    per_entity: Dict[str, PRF] = {}
    for extractions, doc in results:
        doc_scores = match_extractions(extractions, doc.annotations, iou_threshold)
        for entity_type, prf in doc_scores.items():
            overall.add(PRF(prf.tp, prf.fp, prf.fn))
            per_entity.setdefault(entity_type, PRF()).add(PRF(prf.tp, prf.fp, prf.fn))
    return overall, per_entity


def per_document_f1(
    results: Iterable[Tuple[Sequence[Extraction], Document]],
    iou_threshold: float = IOU_THRESHOLD,
) -> List[float]:
    """Document-level F1 series (input to the §6.4 paired t-test)."""
    series = []
    for extractions, doc in results:
        doc_total = PRF()
        for prf in match_extractions(extractions, doc.annotations, iou_threshold).values():
            doc_total.add(PRF(prf.tp, prf.fp, prf.fn))
        series.append(doc_total.f1)
    return series
