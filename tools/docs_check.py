#!/usr/bin/env python
"""Docs hygiene checker (``make docs-check``).

Two guarantees, both cheap enough for CI:

1. **No dead intra-repo links** — every relative markdown link in the
   repo's documentation resolves to a file that exists (external
   ``http(s)``/``mailto`` links and pure ``#anchor`` links are out of
   scope; fenced code blocks and inline code spans are stripped first,
   so example snippets cannot false-positive).
2. **No orphaned docs** — every ``docs/*.md`` is reachable from
   ``README.md`` by following relative links (a doc nobody links to is
   a doc nobody reads; new docs must be wired into the tree).

Exit status 0 when clean; 1 with one ``file: message`` line per
problem — the same contract as the other repo checkers.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

#: ``[text](target)`` — target captured up to the closing paren.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^(```|~~~)")
_INLINE_CODE = re.compile(r"`[^`]*`")

#: Link schemes that are not files in this repository.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def _strip_code(text: str) -> str:
    """Markdown minus fenced blocks and inline code spans."""
    out: List[str] = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(_INLINE_CODE.sub("", line))
    return "\n".join(out)


def markdown_links(path: Path) -> List[str]:
    """Relative (intra-repo) link targets of one markdown file, with
    anchors stripped; external and anchor-only links are dropped."""
    links: List[str] = []
    for target in _LINK.findall(_strip_code(path.read_text(encoding="utf-8"))):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        bare = target.split("#", 1)[0]
        if bare:
            links.append(bare)
    return links


def doc_files(root: Path) -> List[Path]:
    """The markdown files under check: root-level ``*.md`` plus
    everything under ``docs/``."""
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def check_links(root: Path) -> List[str]:
    """Dead-link problems, as ``file: message`` strings."""
    problems: List[str] = []
    for md in doc_files(root):
        for target in markdown_links(md):
            resolved = (md.parent / target).resolve()
            try:
                resolved.relative_to(root.resolve())
            except ValueError:
                problems.append(
                    f"{md.relative_to(root)}: link escapes the repository: {target}"
                )
                continue
            if not resolved.exists():
                problems.append(f"{md.relative_to(root)}: dead link: {target}")
    return problems


def reachable_from(root: Path, start: Path) -> set:
    """Markdown files reachable from ``start`` via relative links."""
    seen = set()
    frontier = [start.resolve()]
    while frontier:
        current = frontier.pop()
        if current in seen or not current.exists():
            continue
        seen.add(current)
        if current.suffix.lower() != ".md":
            continue
        for target in markdown_links(current):
            frontier.append((current.parent / target).resolve())
    return seen


def check_reachability(root: Path) -> List[str]:
    """``docs/*.md`` files no link chain from README.md reaches."""
    readme = root / "README.md"
    if not readme.exists():
        return ["README.md: missing (reachability root)"]
    seen = reachable_from(root, readme)
    problems = []
    docs = root / "docs"
    if docs.is_dir():
        for md in sorted(docs.rglob("*.md")):
            if md.resolve() not in seen:
                problems.append(
                    f"{md.relative_to(root)}: unreachable from README.md "
                    "(add a link from README or another reachable doc)"
                )
    return problems


def run(root: Path) -> Tuple[List[str], Dict[str, int]]:
    """All problems plus summary counts."""
    files = doc_files(root)
    problems = check_links(root) + check_reachability(root)
    n_links = sum(len(markdown_links(f)) for f in files)
    return problems, {"files": len(files), "links": n_links}


def main(argv: Iterable[str] = ()) -> int:
    args = list(argv)
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent
    problems, stats = run(root)
    for problem in problems:
        print(problem)
    status = "FAIL" if problems else "ok"
    print(
        f"docs-check: {status} — {stats['files']} markdown files, "
        f"{stats['links']} intra-repo links, {len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
