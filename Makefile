# Developer entry points.  Everything runs from a source checkout with
# no install step: src/ goes on PYTHONPATH (the package is pure Python).

PY ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint lint-cold lint-flow lint-proofs contracts bench bench-smoke tables trace-smoke chaos-smoke metrics-smoke serve-smoke docs-check

test: lint       ## the tier-1 suite (~600 unit/integration tests) + contract pass
	$(PY) -m pytest -x -q
	REPRO_CONTRACTS=1 $(PY) -m pytest -x -q -m contracts

lint:            ## repo-specific static analysis (see docs/STATIC_ANALYSIS.md)
	$(PY) -m repro check src tests --cache .repro_check_cache.json --stats --timings

lint-cold:       ## same, but from scratch (ignores and rebuilds the result cache)
	rm -f .repro_check_cache.json
	$(PY) -m repro check src tests --cache .repro_check_cache.json --stats --timings

lint-flow:       ## cold+warm flow-analysis round trip; the warm run must rebuild nothing
	rm -f .lint_flow_cache.json
	$(PY) -m repro check src tests --cache .lint_flow_cache.json --stats
	$(PY) -m repro check src tests --cache .lint_flow_cache.json --stats 2>&1 \
	    | tee /dev/stderr | grep -q "0 CFG(s) built, 0 value summaries built"
	rm -f .lint_flow_cache.json

lint-proofs:     ## lint + verify the committed proof ledger matches the source (docs/STATIC_ANALYSIS.md)
	$(PY) -m repro check src tests --cache .repro_check_cache.json --proofs

contracts:       ## the runtime-contract test subset with contracts forced on
	REPRO_CONTRACTS=1 $(PY) -m pytest -x -q -m contracts

docs-check:      ## dead intra-repo markdown links + docs/ reachability from README
	$(PY) tools/docs_check.py

bench-smoke:     ## snapshot refresh + fast-vs-naive cut.decision ledger gate (docs/PERFORMANCE.md)
	$(PY) -m pytest benchmarks/test_bench_smoke.py -m bench_smoke -q -s

trace-smoke:     ## traced 3-doc extract + schema validation of both exporters
	$(PY) -m repro extract --dataset D2 --n 3 --seed 0 \
	    --trace /tmp/repro_trace_smoke.json \
	    --trace-jsonl /tmp/repro_trace_smoke.jsonl > /dev/null
	$(PY) -c "from repro.trace import validate_chrome_trace, validate_jsonl; \
	    n = validate_chrome_trace('/tmp/repro_trace_smoke.json'); \
	    m = validate_jsonl('/tmp/repro_trace_smoke.jsonl'); \
	    print(f'trace-smoke: chrome trace ok ({n} events), jsonl ok ({m} records)')"

chaos-smoke:     ## supervised 20-doc corpus under a canned hang+crash+poison+flaky FaultPlan
	$(PY) -m pytest tests/test_resilience.py -m chaos_smoke -q

metrics-smoke:   ## metric-exporting bench + Prometheus parse + SLO-gated run-health verdict
	$(PY) -m repro bench --dataset D2 --n 4 --seed 0 \
	    --out /tmp/repro_metrics_smoke.json \
	    --metrics /tmp/repro_metrics_smoke.prom \
	    --metrics-jsonl /tmp/repro_metrics_smoke.jsonl > /dev/null
	$(PY) -c "from repro.obs import validate_prometheus; \
	    n = validate_prometheus('/tmp/repro_metrics_smoke.prom'); \
	    print(f'metrics-smoke: prometheus exposition ok ({n} samples)')"
	$(PY) -m repro report --dataset D2

serve-smoke:     ## chaos loadgen -> BENCH_serve.json -> serve-SLO verdict -> live-server e2e (docs/SERVING.md)
	$(PY) -m repro loadgen --n 64 --rate 10 --deadline 4 \
	    --faults 'admit:flaky@0.1,batch:flaky@0.2,merge:flaky@0.3' \
	    --out benchmarks/BENCH_serve.json
	$(PY) -m repro report --serve benchmarks/BENCH_serve.json
	$(PY) -m pytest tests/test_serve.py -m serve_smoke -q

bench:           ## same snapshot via the CLI, tunable (N=…, WORKERS=…, DATASET=…)
	$(PY) -m repro bench --dataset $(or $(DATASET),D2) --n $(or $(N),8) \
	    --workers $(or $(WORKERS),2) --out benchmarks/results/BENCH_pipeline.json

tables:          ## regenerate every paper table/figure into benchmarks/results/
	$(PY) -m pytest benchmarks/ -q -s
