# Developer entry points.  Everything runs from a source checkout with
# no install step: src/ goes on PYTHONPATH (the package is pure Python).

PY ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke tables

test:            ## the tier-1 suite (~600 unit/integration tests)
	$(PY) -m pytest -x -q

bench-smoke:     ## tiny instrumented run; refreshes benchmarks/results/BENCH_pipeline.json
	$(PY) -m pytest benchmarks/test_bench_smoke.py -m bench_smoke -q -s

bench:           ## same snapshot via the CLI, tunable (N=…, WORKERS=…, DATASET=…)
	$(PY) -m repro bench --dataset $(or $(DATASET),D2) --n $(or $(N),8) \
	    --workers $(or $(WORKERS),2) --out benchmarks/results/BENCH_pipeline.json

tables:          ## regenerate every paper table/figure into benchmarks/results/
	$(PY) -m pytest benchmarks/ -q -s
